// Schedule explorer: runs the pool-level recovery scenarios of
// workloads/schedule_scenarios.hpp under the deterministic fiber backend,
// sweeping seeds and asserting the detection scorecard per schedule.
//
// Structure (links robmon_sim — the whole runtime under SimBackend):
//   * PinnedCorpus — the regression corpus: known-interesting interleavings
//     (each recovery race that previously only a soak could reach) pinned
//     by (scenario, seed, schedule digest, scorecard).
//   * SameSeed* / DifferentSeeds* — the determinism contract: same seed ⇒
//     byte-identical v6 trace, report log and digest; seeds diverge.
//   * FreshSeedSweep — bounded per-PR exploration of new seeds
//     (ROBMON_EXPLORE_SEEDS per scenario, base ROBMON_EXPLORE_BASE); the
//     nightly job widens it and uploads failing seeds from
//     ROBMON_FAILED_SEEDS_FILE as artifacts.
//   * Replay — re-runs one (scenario, seed) named via env and dumps the
//     result; every failure above prints the exact command.
//   * PrintCorpus — regenerates the pinned table (ROBMON_PRINT_CORPUS=1).
#include "schedule_explorer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace robmon::testing {
namespace {

using wl::run_schedule_scenario;
using wl::ScenarioResult;
using wl::ScheduleScenario;

// The pinned regression corpus.  Two seeds per scenario: twelve exact
// interleavings of the six recovery races.  Digests/scorecards generated
// with PrintCorpus (see header).
const CorpusRow kCorpus[] = {
    {ScheduleScenario::kRecoveryFull, 1, 0x331c9b537599123eULL,
     "wf=1 lo=1 act=2 poison=1 deliver=0 unpoison=1 impose=1 fenced=1 "
     "rf=1 reports=4"},
    {ScheduleScenario::kRecoveryFull, 2, 0x8d3b1e9af114d61cULL,
     "wf=1 lo=1 act=2 poison=1 deliver=0 unpoison=1 impose=1 fenced=1 "
     "rf=1 reports=4"},
    {ScheduleScenario::kDeliverToVictim, 1, 0x7076a6b10e5e0276ULL,
     "wf=1 lo=0 act=1 poison=0 deliver=1 unpoison=0 impose=0 fenced=0 "
     "rf=1 reports=2"},
    {ScheduleScenario::kDeliverToVictim, 2, 0x161b35d6135122eaULL,
     "wf=1 lo=0 act=1 poison=0 deliver=1 unpoison=0 impose=0 fenced=0 "
     "rf=1 reports=2"},
    {ScheduleScenario::kPoisonDuringWait, 1, 0x4195c1a9c16e3f74ULL,
     "wf=0 lo=0 act=0 poison=0 deliver=0 unpoison=0 impose=0 fenced=0 "
     "rf=9 reports=0"},
    {ScheduleScenario::kPoisonDuringWait, 2, 0xf9aab1b76f21812fULL,
     "wf=0 lo=0 act=0 poison=0 deliver=0 unpoison=0 impose=0 fenced=0 "
     "rf=9 reports=0"},
    {ScheduleScenario::kUnpoisonRacesNewBlocker, 1, 0x5bfce86855b749f1ULL,
     "wf=0 lo=0 act=0 poison=0 deliver=0 unpoison=0 impose=0 fenced=0 "
     "rf=6 reports=0"},
    {ScheduleScenario::kUnpoisonRacesNewBlocker, 2, 0xd33bfc3c8e7cc868ULL,
     "wf=0 lo=0 act=0 poison=0 deliver=0 unpoison=0 impose=0 fenced=0 "
     "rf=6 reports=0"},
    {ScheduleScenario::kRemovePoisonedMonitor, 1, 0xa06f29f95637bcd8ULL,
     "wf=1 lo=0 act=1 poison=1 deliver=0 unpoison=0 impose=0 fenced=0 "
     "rf=1 reports=2"},
    {ScheduleScenario::kRemovePoisonedMonitor, 2, 0x0c3525fd76dc5c1dULL,
     "wf=1 lo=0 act=1 poison=1 deliver=0 unpoison=0 impose=0 fenced=0 "
     "rf=1 reports=2"},
    {ScheduleScenario::kGateImpositionRacesCrossing, 1, 0x1ae78425703b378eULL,
     "wf=0 lo=1 act=1 poison=0 deliver=0 unpoison=0 impose=1 fenced=10 "
     "rf=0 reports=2"},
    {ScheduleScenario::kGateImpositionRacesCrossing, 2, 0x930c9cde2cb78699ULL,
     "wf=0 lo=1 act=1 poison=0 deliver=0 unpoison=0 impose=1 fenced=14 "
     "rf=0 reports=2"},
};

std::string context(const ScenarioResult& result) {
  return std::string(result.name) + " seed=" + std::to_string(result.seed) +
         " digest=0x" + [&] {
           char buffer[32];
           std::snprintf(buffer, sizeof(buffer), "%016llx",
                         static_cast<unsigned long long>(
                             result.schedule_digest));
           return std::string(buffer);
         }() +
         " [" + result.scorecard() + "]\n  failure: " +
         (result.failure.empty() ? "<none>" : result.failure) +
         "\n  replay: " +
         replay_command(wl::scenario_from_name(result.name), result.seed);
}

TEST(ScheduleExplorerTest, PinnedCorpus) {
  for (const CorpusRow& row : kCorpus) {
    const ScenarioResult result = run_schedule_scenario(row.scenario, row.seed);
    EXPECT_TRUE(result.completed) << context(result);
    EXPECT_EQ(result.schedule_digest, row.digest)
        << "schedule drifted off the pinned interleaving\n"
        << context(result)
        << "\n  (legitimate drift: regenerate with PrintCorpus)";
    EXPECT_EQ(result.scorecard(), row.scorecard) << context(result);
  }
}

TEST(ScheduleExplorerTest, SameSeedIsByteIdentical) {
  // The acceptance contract: one pool-level recovery run (confirmed-cycle
  // poison + predicted-cycle imposition, zero real threads), executed twice
  // from the same seed, reproduces the identical schedule, byte-identical
  // v6 trace and identical fault report.
  const ScenarioResult first =
      run_schedule_scenario(ScheduleScenario::kRecoveryFull, 42);
  const ScenarioResult second =
      run_schedule_scenario(ScheduleScenario::kRecoveryFull, 42);
  EXPECT_TRUE(first.completed) << context(first);
  EXPECT_EQ(first.schedule_digest, second.schedule_digest);
  EXPECT_EQ(first.steps, second.steps);
  EXPECT_FALSE(first.trace.empty());
  EXPECT_EQ(first.trace, second.trace) << "v6 trace not byte-identical";
  EXPECT_EQ(first.report_log, second.report_log);
  EXPECT_EQ(first.scorecard(), second.scorecard());
}

TEST(ScheduleExplorerTest, DifferentSeedsExploreDifferentSchedules) {
  const ScenarioResult base =
      run_schedule_scenario(ScheduleScenario::kRecoveryFull, 42);
  bool diverged = false;
  for (std::uint64_t seed = 43; seed <= 46 && !diverged; ++seed) {
    const ScenarioResult other =
        run_schedule_scenario(ScheduleScenario::kRecoveryFull, seed);
    diverged = other.schedule_digest != base.schedule_digest;
  }
  EXPECT_TRUE(diverged) << "seed sweep never left the base interleaving";
}

TEST(ScheduleExplorerTest, FreshSeedSweep) {
  const std::uint64_t seeds_per_scenario = env_u64("ROBMON_EXPLORE_SEEDS", 3);
  const std::uint64_t base = env_u64("ROBMON_EXPLORE_BASE", 1000);
  const char* failed_file = std::getenv("ROBMON_FAILED_SEEDS_FILE");
  std::vector<std::string> failing;
  for (const ScheduleScenario scenario : wl::kAllScheduleScenarios) {
    for (std::uint64_t i = 0; i < seeds_per_scenario; ++i) {
      const std::uint64_t seed = base + i;
      const ScenarioResult result = run_schedule_scenario(scenario, seed);
      EXPECT_TRUE(result.completed) << context(result);
      if (!result.completed) {
        failing.push_back(std::string(wl::to_string(scenario)) + " " +
                          std::to_string(seed) + " " + result.failure);
      }
    }
  }
  if (failed_file != nullptr && !failing.empty()) {
    std::ofstream out(failed_file, std::ios::app);
    for (const std::string& line : failing) out << line << "\n";
  }
}

TEST(ScheduleExplorerTest, Replay) {
  const char* scenario_name = std::getenv("ROBMON_REPLAY_SCENARIO");
  if (scenario_name == nullptr || *scenario_name == '\0') {
    GTEST_SKIP() << "set ROBMON_REPLAY_SCENARIO / ROBMON_REPLAY_SEED to "
                    "replay one pinned interleaving";
  }
  const std::uint64_t seed = env_u64("ROBMON_REPLAY_SEED", 1);
  const ScheduleScenario scenario = wl::scenario_from_name(scenario_name);
  const ScenarioResult result = run_schedule_scenario(scenario, seed);
  std::printf("%s\n", context(result).c_str());
  std::printf("steps=%llu virtual_end_ns=%lld reports=%llu\n",
              static_cast<unsigned long long>(result.steps),
              static_cast<long long>(result.virtual_end_ns),
              static_cast<unsigned long long>(result.reports_total));
  std::printf("--- report log ---\n%s", result.report_log.c_str());
  std::printf("--- v6 trace (%zu bytes) ---\n%s", result.trace.size(),
              result.trace.c_str());
  EXPECT_TRUE(result.completed) << context(result);
}

TEST(ScheduleExplorerTest, PrintCorpus) {
  if (std::getenv("ROBMON_PRINT_CORPUS") == nullptr) {
    GTEST_SKIP() << "set ROBMON_PRINT_CORPUS=1 to regenerate the pinned "
                    "corpus table";
  }
  for (const CorpusRow& row : kCorpus) {
    const ScenarioResult result = run_schedule_scenario(row.scenario, row.seed);
    // Emitted as two adjacent literals split before " rf=", matching the
    // committed kCorpus layout (80-column clang-format).
    std::string head = result.scorecard();
    std::string tail;
    const std::size_t cut = head.rfind(" rf=");
    if (cut != std::string::npos) {
      tail = head.substr(cut + 1);
      head.resize(cut + 1);
    }
    std::printf("    {ScheduleScenario::%s, %llu, 0x%016llxULL,\n"
                "     \"%s\"\n     \"%s\"},%s%s\n",
                [&] {
                  switch (row.scenario) {
                    case ScheduleScenario::kRecoveryFull:
                      return "kRecoveryFull";
                    case ScheduleScenario::kDeliverToVictim:
                      return "kDeliverToVictim";
                    case ScheduleScenario::kPoisonDuringWait:
                      return "kPoisonDuringWait";
                    case ScheduleScenario::kUnpoisonRacesNewBlocker:
                      return "kUnpoisonRacesNewBlocker";
                    case ScheduleScenario::kRemovePoisonedMonitor:
                      return "kRemovePoisonedMonitor";
                    case ScheduleScenario::kGateImpositionRacesCrossing:
                      return "kGateImpositionRacesCrossing";
                  }
                  return "?";
                }(),
                static_cast<unsigned long long>(row.seed),
                static_cast<unsigned long long>(result.schedule_digest),
                head.c_str(), tail.c_str(),
                result.completed ? "" : "  // FAILED: ",
                result.completed ? "" : result.failure.c_str());
    if (!result.completed) {
      ADD_FAILURE() << context(result);
    }
  }
}

}  // namespace
}  // namespace robmon::testing
