// Unit tests for the deterministic fiber backend (sync/sim_backend.hpp):
// scheduling, virtual time, the cooperative primitives, and the seed →
// schedule-digest determinism contract the schedule explorer relies on.
// This binary links robmon_sim, so sync::Semaphore / CheckerGate / Gate are
// the backend-ported versions running on fibers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sync/backend.hpp"
#include "sync/gate.hpp"
#include "sync/semaphore.hpp"
#include "sync/sim_backend.hpp"

namespace robmon {
namespace {

using sync::SchedulePolicy;
using sync::SimScheduler;

TEST(SimSchedulerTest, RunsAllFibersToCompletion) {
  SimScheduler sched;
  int ran = 0;
  sched.spawn([&] { ++ran; });
  sched.spawn([&] { ++ran; });
  sched.spawn([&] { ++ran; });
  EXPECT_EQ(sched.run(), SimScheduler::StopReason::kAllDone);
  sched.rethrow_any_failure();
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(sched.live_count(), 0u);
}

TEST(SimSchedulerTest, VirtualSleepAdvancesClockWithoutWallTime) {
  SimScheduler sched;
  util::TimeNs woke_at = -1;
  sched.spawn([&] {
    sync::backend_sleep_for(5 * util::kSecond);
    woke_at = sync::backend_now();
  });
  EXPECT_EQ(sched.run(), SimScheduler::StopReason::kAllDone);
  EXPECT_GE(woke_at, 5 * util::kSecond);
}

TEST(SimSchedulerTest, DeadlockedFibersReportQuiescent) {
  SimScheduler sched({.policy = SchedulePolicy::kFifo});
  sync::SimMutex a;
  sync::SimMutex b;
  sched.spawn([&] {
    a.lock();
    sched.yield_fiber();
    b.lock();  // never acquired
    b.unlock();
    a.unlock();
  });
  sched.spawn([&] {
    b.lock();
    sched.yield_fiber();
    a.lock();  // never acquired
    a.unlock();
    b.unlock();
  });
  EXPECT_EQ(sched.run(), SimScheduler::StopReason::kQuiescent);
  EXPECT_EQ(sched.live_count(), 2u);
}

TEST(SimSchedulerTest, MutexProvidesMutualExclusion) {
  SimScheduler sched({.seed = 7});
  sync::SimMutex mu;
  int in_section = 0;
  int max_in_section = 0;
  int total = 0;
  for (int i = 0; i < 8; ++i) {
    sched.spawn([&] {
      for (int j = 0; j < 10; ++j) {
        mu.lock();
        max_in_section = std::max(max_in_section, ++in_section);
        sched.yield_fiber();  // tempt another fiber into the section
        --in_section;
        ++total;
        mu.unlock();
      }
    });
  }
  EXPECT_EQ(sched.run(), SimScheduler::StopReason::kAllDone);
  EXPECT_EQ(max_in_section, 1);
  EXPECT_EQ(total, 80);
}

TEST(SimSchedulerTest, CondVarNotifyAndTimedWait) {
  SimScheduler sched;
  sync::SimMutex mu;
  sync::SimCondVar cv;
  bool ready = false;
  bool waiter_saw_ready = false;
  bool timed_out = false;
  sched.spawn([&] {
    std::unique_lock<sync::SimMutex> lock(mu);
    cv.wait(lock, [&] { return ready; });
    waiter_saw_ready = ready;
  });
  sched.spawn([&] {
    // Nobody ever sets this condition: the timed wait must ride the virtual
    // clock to its deadline (the scheduler jumps time when all are parked).
    std::unique_lock<sync::SimMutex> lock(mu);
    sync::SimCondVar idle_cv;
    timed_out = !idle_cv.wait_for(lock, std::chrono::milliseconds(50),
                                  [] { return false; });
  });
  sched.spawn([&] {
    std::unique_lock<sync::SimMutex> lock(mu);
    ready = true;
    cv.notify_all();
  });
  EXPECT_EQ(sched.run(), SimScheduler::StopReason::kAllDone);
  sched.rethrow_any_failure();
  EXPECT_TRUE(waiter_saw_ready);
  EXPECT_TRUE(timed_out);
  EXPECT_GE(sched.now(), 50 * util::kMillisecond);
}

TEST(SimSchedulerTest, SimThreadJoinsLikeStdThread) {
  SimScheduler sched;
  std::vector<int> order;
  sched.spawn([&] {
    sync::BackendThread worker([&] {
      sync::backend_sleep_for(util::kMillisecond);
      order.push_back(1);
    });
    worker.join();
    order.push_back(2);
  });
  EXPECT_EQ(sched.run(), SimScheduler::StopReason::kAllDone);
  sched.rethrow_any_failure();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimSchedulerTest, SemaphorePoisonReleasesParkedFiber) {
  SimScheduler sched;
  sync::Semaphore sem(0);
  sync::AcquireResult result = sync::AcquireResult::kAcquired;
  sched.spawn([&] { result = sem.acquire(); });
  sched.spawn([&] { sem.poison(); });
  EXPECT_EQ(sched.run(), SimScheduler::StopReason::kAllDone);
  EXPECT_EQ(result, sync::AcquireResult::kPoisoned);
}

TEST(SimSchedulerTest, CheckerGateExclusiveWaitsForSharedDrain) {
  SimScheduler sched({.policy = SchedulePolicy::kFifo});
  sync::CheckerGate gate;
  std::vector<std::string> order;
  sched.spawn([&] {
    gate.enter_shared();
    sched.yield_fiber();
    sched.yield_fiber();
    order.push_back("shared-exit");
    gate.exit_shared();
  });
  sched.spawn([&] {
    sched.yield_fiber();  // let the shared holder in first
    gate.enter_exclusive();
    order.push_back("exclusive");
    gate.exit_exclusive();
  });
  EXPECT_EQ(sched.run(), SimScheduler::StopReason::kAllDone);
  EXPECT_EQ(order, (std::vector<std::string>{"shared-exit", "exclusive"}));
}

TEST(SimSchedulerTest, SameSeedSameDigestDifferentSeedDiverges) {
  const auto digest_for = [](std::uint64_t seed) {
    SimScheduler sched({.policy = SchedulePolicy::kRandom, .seed = seed});
    sync::SimMutex mu;
    long counter = 0;
    for (int i = 0; i < 6; ++i) {
      sched.spawn([&] {
        for (int j = 0; j < 20; ++j) {
          mu.lock();
          ++counter;
          mu.unlock();
          sched.yield_fiber();
        }
      });
    }
    EXPECT_EQ(sched.run(), SimScheduler::StopReason::kAllDone);
    return sched.schedule_digest();
  };
  const std::uint64_t first = digest_for(1234);
  const std::uint64_t again = digest_for(1234);
  EXPECT_EQ(first, again);
  // At least one of a handful of other seeds must take a different schedule.
  bool diverged = false;
  for (std::uint64_t seed = 1; seed <= 4 && !diverged; ++seed) {
    diverged = digest_for(seed) != first;
  }
  EXPECT_TRUE(diverged);
}

TEST(SimSchedulerTest, ExceptionInFiberIsCapturedAndRethrown) {
  SimScheduler sched;
  sched.spawn([] { throw std::runtime_error("boom"); });
  EXPECT_EQ(sched.run(), SimScheduler::StopReason::kAllDone);
  EXPECT_THROW(sched.rethrow_any_failure(), std::runtime_error);
}

}  // namespace
}  // namespace robmon
