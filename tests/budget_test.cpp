// Overhead-budget tests: the BudgetController ladder driven
// deterministically from a util::ManualClock (shed order, hysteresis,
// symmetric recovery, disabled-is-no-op), the CheckerPool integration
// (prediction shed before detection, wait-for checkpoints never shed,
// period widening, the inline→offloaded flip under pressure), and a
// structural smoke of the wl::run_budget_spike scenario the bench and the
// nightly soak gate.  Spend *magnitudes* are load- and machine-dependent,
// so the scenario smoke asserts only the invariants that hold at any speed:
// ±1 chained transitions, zero missed deterministic detections, live
// wait-for passes during the spike.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <stdexcept>

#include "runtime/budget.hpp"
#include "runtime/checker_pool.hpp"
#include "runtime/robust_monitor.hpp"
#include "util/clock.hpp"
#include "workloads/loadgen.hpp"

namespace robmon::rt {
namespace {

using core::CollectingSink;
using core::MonitorSpec;
using util::kMillisecond;

MonitorSpec relaxed_timers(MonitorSpec spec, util::TimeNs check_period) {
  spec.t_max = 5 * util::kSecond;
  spec.t_io = 5 * util::kSecond;
  spec.t_limit = 5 * util::kSecond;
  spec.check_period = check_period;
  return spec;
}

/// Ten-millisecond decision windows, EWMA weight 1 (the newest window *is*
/// the EWMA), so one over/under-budget window moves the ladder exactly one
/// step — the deterministic harness for the controller tests.
BudgetOptions step_options() {
  BudgetOptions options;
  options.fraction = 0.01;
  options.ewma_alpha = 1.0;
  options.recover_margin = 0.5;
  options.decision_window = 10 * kMillisecond;
  options.stretch_boost = 4.0;
  options.widen_factor = 4.0;
  return options;
}

/// Advance the manual clock by `wall` and fold one batch that spent
/// `spend` ns checking — one full decision window per call under
/// step_options().
std::optional<trace::BudgetRecord> step(BudgetController& controller,
                                        util::ManualClock& clock,
                                        util::TimeNs spend,
                                        util::TimeNs wall = 10 * kMillisecond) {
  clock.advance(wall);
  return controller.record_batch(spend, clock.now_ns());
}

// --- Controller: disabled semantics. -----------------------------------------

TEST(BudgetControllerTest, DefaultConstructedIsDisabledNoOp) {
  BudgetController controller;
  util::ManualClock clock;
  EXPECT_FALSE(controller.enabled());
  for (int i = 0; i < 5; ++i) {
    // Wildly over any conceivable budget: still no measurement, no levels.
    EXPECT_EQ(step(controller, clock, 9 * kMillisecond), std::nullopt);
  }
  EXPECT_EQ(controller.level(), BudgetLevel::kNominal);
  EXPECT_EQ(controller.transitions(), 0u);
  EXPECT_TRUE(controller.log().empty());
  EXPECT_EQ(controller.spend_ewma(), 0.0);
  EXPECT_EQ(controller.stretch_boost(), 1.0);
  EXPECT_FALSE(controller.shed_prediction());
  EXPECT_EQ(controller.widen_factor(), 1.0);
}

TEST(BudgetControllerTest, ZeroFractionIsDisabledAndSkipsValidation) {
  BudgetOptions options = step_options();
  options.fraction = 0.0;
  options.ewma_alpha = 7.0;  // invalid — but a disabled controller
  options.recover_margin = 2.0;  // carries no constraints
  BudgetController controller{options};
  util::ManualClock clock;
  EXPECT_FALSE(controller.enabled());
  EXPECT_EQ(step(controller, clock, 9 * kMillisecond), std::nullopt);
  EXPECT_EQ(controller.level(), BudgetLevel::kNominal);
}

TEST(BudgetControllerTest, InvalidKnobsThrowWhenEnabled) {
  const auto with = [](auto mutate) {
    BudgetOptions options = step_options();
    mutate(options);
    return options;
  };
  EXPECT_THROW(BudgetController{with([](BudgetOptions& o) {
                 o.fraction = 1.5;
               })},
               std::invalid_argument);
  EXPECT_THROW(BudgetController{with([](BudgetOptions& o) {
                 o.ewma_alpha = 0.0;
               })},
               std::invalid_argument);
  EXPECT_THROW(BudgetController{with([](BudgetOptions& o) {
                 o.recover_margin = 1.0;
               })},
               std::invalid_argument);
  EXPECT_THROW(BudgetController{with([](BudgetOptions& o) {
                 o.decision_window = -1;
               })},
               std::invalid_argument);
  EXPECT_THROW(BudgetController{with([](BudgetOptions& o) {
                 o.stretch_boost = 0.5;
               })},
               std::invalid_argument);
  EXPECT_THROW(BudgetController{with([](BudgetOptions& o) {
                 o.widen_factor = 0.5;
               })},
               std::invalid_argument);
}

// --- Controller: the shed ladder. --------------------------------------------

TEST(BudgetControllerTest, LadderClimbsOneStepPerWindowInShedOrder) {
  BudgetController controller{step_options()};
  util::ManualClock clock;
  EXPECT_TRUE(controller.enabled());

  // First batch only seeds the window — no denominator yet.
  EXPECT_EQ(step(controller, clock, 0), std::nullopt);

  // 1 ms of checking per 10 ms window = 10% spend against a 1% budget.
  const auto first = step(controller, clock, 1 * kMillisecond);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->from, 0);
  EXPECT_EQ(first->to, 1);
  EXPECT_EQ(first->spend_ppm, 100000u);  // 10% as integer ppm
  EXPECT_EQ(first->budget_ppm, 10000u);  // 1% budget
  EXPECT_NE(first->detail.find("stretch"), std::string::npos);
  EXPECT_EQ(controller.level(), BudgetLevel::kStretch);
  // Stretch engaged; prediction and detection untouched — the shed order.
  EXPECT_EQ(controller.stretch_boost(), 4.0);
  EXPECT_FALSE(controller.shed_prediction());
  EXPECT_EQ(controller.widen_factor(), 1.0);

  const auto second = step(controller, clock, 1 * kMillisecond);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->from, 1);
  EXPECT_EQ(second->to, 2);
  EXPECT_NE(second->detail.find("prediction"), std::string::npos);
  EXPECT_EQ(controller.level(), BudgetLevel::kShedPrediction);
  EXPECT_TRUE(controller.shed_prediction());
  EXPECT_EQ(controller.widen_factor(), 1.0);  // detection still at base

  const auto third = step(controller, clock, 1 * kMillisecond);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->from, 2);
  EXPECT_EQ(third->to, 3);
  EXPECT_NE(third->detail.find("widen"), std::string::npos);
  EXPECT_EQ(controller.level(), BudgetLevel::kWiden);
  EXPECT_EQ(controller.widen_factor(), 4.0);

  // The ladder tops out at kWiden: detection is widened toward the timer
  // bound, never dropped — there is no deeper level to shed it at.
  EXPECT_EQ(step(controller, clock, 1 * kMillisecond), std::nullopt);
  EXPECT_EQ(controller.level(), BudgetLevel::kWiden);
  EXPECT_EQ(controller.transitions(), 3u);
}

TEST(BudgetControllerTest, HysteresisBandHoldsTheLevel) {
  BudgetController controller{step_options()};
  util::ManualClock clock;
  step(controller, clock, 0);  // seed
  step(controller, clock, 1 * kMillisecond);  // -> kStretch

  // 75 µs / 10 ms = 0.75%: under the 1% budget but above the 0.5% recovery
  // threshold — inside the hysteresis band, so the level must not move in
  // either direction.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(step(controller, clock, 75'000), std::nullopt);
  }
  EXPECT_EQ(controller.level(), BudgetLevel::kStretch);
  EXPECT_EQ(controller.transitions(), 1u);
}

TEST(BudgetControllerTest, RecoveryRetracesTheLadderSymmetrically) {
  BudgetController controller{step_options()};
  util::ManualClock clock;
  step(controller, clock, 0);  // seed
  step(controller, clock, 1 * kMillisecond);
  step(controller, clock, 1 * kMillisecond);
  step(controller, clock, 1 * kMillisecond);
  ASSERT_EQ(controller.level(), BudgetLevel::kWiden);

  // 10 µs / 10 ms = 0.1%, decisively under the 0.5% recovery threshold:
  // one step back down per window, in reverse shed order.
  const auto down3 = step(controller, clock, 10'000);
  ASSERT_TRUE(down3.has_value());
  EXPECT_EQ(down3->from, 3);
  EXPECT_EQ(down3->to, 2);
  EXPECT_NE(down3->detail.find("restored to base cadence"),
            std::string::npos);
  EXPECT_EQ(controller.widen_factor(), 1.0);
  EXPECT_TRUE(controller.shed_prediction());  // still shed at level 2

  const auto down2 = step(controller, clock, 10'000);
  ASSERT_TRUE(down2.has_value());
  EXPECT_EQ(down2->from, 2);
  EXPECT_EQ(down2->to, 1);
  EXPECT_NE(down2->detail.find("prediction resumed"), std::string::npos);
  EXPECT_FALSE(controller.shed_prediction());
  EXPECT_EQ(controller.stretch_boost(), 4.0);  // still boosted at level 1

  const auto down1 = step(controller, clock, 10'000);
  ASSERT_TRUE(down1.has_value());
  EXPECT_EQ(down1->from, 1);
  EXPECT_EQ(down1->to, 0);
  EXPECT_NE(down1->detail.find("nominal"), std::string::npos);
  EXPECT_EQ(controller.level(), BudgetLevel::kNominal);
  EXPECT_EQ(controller.stretch_boost(), 1.0);

  // Floor: a calm controller at nominal stays there.
  EXPECT_EQ(step(controller, clock, 10'000), std::nullopt);
  EXPECT_EQ(controller.level(), BudgetLevel::kNominal);

  // The log is the full round trip, every transition ±1 and chained —
  // exactly what wl::BudgetSpikeResult::shed_order_ok re-derives.
  const auto log = controller.log();
  ASSERT_EQ(log.size(), 6u);
  int level = 0;
  for (const trace::BudgetRecord& record : log) {
    EXPECT_EQ(record.from, level);
    EXPECT_EQ(std::abs(record.to - record.from), 1);
    level = record.to;
  }
  EXPECT_EQ(level, 0);
}

TEST(BudgetControllerTest, WindowsNotBatchesDriveTransitions) {
  BudgetController controller{step_options()};
  util::ManualClock clock;
  clock.advance(kMillisecond);
  controller.record_batch(0, clock.now_ns());  // seed

  // Three over-budget batches inside one 10 ms decision window: no
  // transition until the window closes — a single slow batch cannot
  // whipsaw the level.
  EXPECT_EQ(step(controller, clock, kMillisecond, 4 * kMillisecond),
            std::nullopt);
  EXPECT_EQ(step(controller, clock, kMillisecond, 4 * kMillisecond),
            std::nullopt);
  EXPECT_EQ(controller.level(), BudgetLevel::kNominal);
  const auto closed =
      step(controller, clock, kMillisecond, 4 * kMillisecond);
  ASSERT_TRUE(closed.has_value());  // 3 ms / 12 ms = 25% over a 1% budget
  EXPECT_EQ(closed->to, 1);
  EXPECT_EQ(controller.transitions(), 1u);
}

// --- Pool integration. -------------------------------------------------------

/// Pool options with an unreachably small budget and decision_window = 0:
/// every measured sample closes a window, so a handful of check_inline()
/// calls deterministically walks the ladder to kWiden.
CheckerPool::Options pressure_pool_options(core::ReportSink* waitfor_sink,
                                           core::ReportSink* lockorder_sink) {
  CheckerPool::Options options;
  options.threads = 1;
  options.waitfor_checkpoint_period = util::kSecond;
  options.waitfor_sink = waitfor_sink;
  options.lockorder_checkpoint_period = util::kSecond;
  options.lockorder_sink = lockorder_sink;
  options.budget.fraction = 1e-6;
  options.budget.ewma_alpha = 1.0;
  options.budget.recover_margin = 0.5;
  options.budget.decision_window = 0;
  options.budget.stretch_boost = 4.0;
  options.budget.widen_factor = 4.0;
  return options;
}

TEST(CheckerPoolBudgetTest, ShedsPredictionButNeverWaitForDetection) {
  CollectingSink sink, waitfor_sink, lockorder_sink;
  CheckerPool pool(pressure_pool_options(&waitfor_sink, &lockorder_sink));
  RobustMonitor monitor(
      relaxed_timers(MonitorSpec::manager("budget"), 20 * kMillisecond),
      sink);
  const CheckerPool::MonitorId id =
      pool.add(monitor.monitor(), monitor.detector(), {});

  // Prediction runs while nominal.
  EXPECT_EQ(pool.budget_level(), BudgetLevel::kNominal);
  pool.run_lockorder_checkpoint();
  EXPECT_EQ(pool.lockorder_checkpoints(), 1u);
  EXPECT_EQ(pool.prediction_sheds(), 0u);

  // Drive measured checks until the ladder tops out (every sample is over
  // the 1e-6 budget; the first only seeds the window).
  for (int i = 0; i < 50 && pool.budget_level() != BudgetLevel::kWiden;
       ++i) {
    ASSERT_EQ(monitor.enter(1, "Op"), Status::kOk);
    monitor.exit(1);
    pool.check_inline(id);
  }
  ASSERT_EQ(pool.budget_level(), BudgetLevel::kWiden);
  EXPECT_GE(pool.inline_checks(), 3u);

  // Lock-order prediction is shed: the pass is skipped (and counted as a
  // shed), not run.
  const std::uint64_t passes_before = pool.lockorder_checkpoints();
  EXPECT_EQ(pool.run_lockorder_checkpoint(), 0u);
  EXPECT_EQ(pool.lockorder_checkpoints(), passes_before);
  EXPECT_GE(pool.prediction_sheds(), 1u);

  // Confirmed-cycle detection is NEVER shed: wait-for passes still run at
  // the deepest degradation level.
  const std::uint64_t waitfor_before = pool.waitfor_checkpoints();
  pool.run_waitfor_checkpoint();
  EXPECT_EQ(pool.waitfor_checkpoints(), waitfor_before + 1);

  // And the transition log spells out the order it got here in.
  const auto log = pool.budget_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_NE(log[0].detail.find("stretch"), std::string::npos);
  EXPECT_NE(log[1].detail.find("prediction"), std::string::npos);
  EXPECT_NE(log[2].detail.find("widen"), std::string::npos);
  EXPECT_EQ(pool.budget_transitions(), 3u);
}

TEST(CheckerPoolBudgetTest, WidenMultipliesEffectivePeriodAtTopLevel) {
  CollectingSink sink, waitfor_sink, lockorder_sink;
  CheckerPool pool(pressure_pool_options(&waitfor_sink, &lockorder_sink));
  RobustMonitor monitor(
      relaxed_timers(MonitorSpec::manager("widen"), 20 * kMillisecond),
      sink);
  const CheckerPool::MonitorId id =
      pool.add(monitor.monitor(), monitor.detector(), {});
  EXPECT_EQ(pool.effective_period(id), pool.period(id));

  for (int i = 0; i < 50 && pool.budget_level() != BudgetLevel::kWiden;
       ++i) {
    pool.check_inline(id);
  }
  ASSERT_EQ(pool.budget_level(), BudgetLevel::kWiden);

  // Idle under pressure: the stretch ceiling is max_stretch (1.0 here) ×
  // stretch_boost, so the boost alone carried the stretch to 4 — and the
  // effective period reflects it (timers are relaxed to 5 s, far above
  // 4 × 20 ms, so the smallest-timer clamp does not bite).
  pool.check_now(id);
  EXPECT_EQ(pool.stretch(id), 4.0);
  EXPECT_EQ(pool.effective_period(id), 4 * pool.period(id));

  // Activity snaps the stretch back to base — but kWiden multiplies the
  // effective period of EVERY monitor, active ones included: widening is
  // its own lever, not stretch.
  ASSERT_EQ(monitor.enter(1, "Op"), Status::kOk);
  monitor.exit(1);
  pool.check_now(id);
  EXPECT_EQ(pool.stretch(id), 1.0);
  EXPECT_EQ(pool.effective_period(id), 4 * pool.period(id));
}

TEST(CheckerPoolBudgetTest, PressureFlipsScheduledInlineMonitorsOntoHeap) {
  CollectingSink sink, waitfor_sink, lockorder_sink;
  CheckerPool pool(pressure_pool_options(&waitfor_sink, &lockorder_sink));
  RobustMonitor monitor(
      relaxed_timers(MonitorSpec::manager("inline"), 20 * kMillisecond),
      sink);
  CheckerPool::MonitorOptions monitor_options;
  monitor_options.instrumentation =
      CheckerPool::CheckInstrumentation::kInline;
  const CheckerPool::MonitorId id =
      pool.add(monitor.monitor(), monitor.detector(), monitor_options);
  pool.schedule(id);
  EXPECT_FALSE(pool.inline_offloaded());
  EXPECT_EQ(pool.inline_flips(), 0u);

  for (int i = 0;
       i < 50 && pool.budget_level() < BudgetLevel::kStretch; ++i) {
    pool.check_inline(id);
  }
  ASSERT_GE(pool.budget_level(), BudgetLevel::kStretch);

  // Crossing kStretch takes the inline monitor over: call sites' polls
  // stand down and the worker heap serves it until the controller
  // recovers.
  EXPECT_TRUE(pool.inline_offloaded());
  EXPECT_GE(pool.inline_flips(), 1u);
  pool.unschedule(id);
}

TEST(CheckerPoolBudgetTest, DisabledBudgetKeepsEveryKnobNeutral) {
  CollectingSink sink;
  CheckerPool pool;  // Options::budget defaults to fraction 0 = disabled
  RobustMonitor monitor(
      relaxed_timers(MonitorSpec::manager("off"), 20 * kMillisecond), sink);
  const CheckerPool::MonitorId id =
      pool.add(monitor.monitor(), monitor.detector(), {});
  for (int i = 0; i < 10; ++i) pool.check_inline(id);
  EXPECT_EQ(pool.budget_level(), BudgetLevel::kNominal);
  EXPECT_EQ(pool.budget_transitions(), 0u);
  EXPECT_TRUE(pool.budget_log().empty());
  EXPECT_FALSE(pool.inline_offloaded());
  EXPECT_EQ(pool.inline_flips(), 0u);
  EXPECT_EQ(pool.effective_period(id), pool.period(id));
  EXPECT_EQ(pool.inline_checks(), 10u);  // accounted, just not governed
}

// --- Spike scenario (the shape bench/check_overhead and the soak gate). ------

TEST(BudgetSpikeScenarioTest, RejectsDisabledBudget) {
  wl::BudgetSpikeOptions options;
  options.budget.fraction = 0.0;
  EXPECT_THROW(wl::run_budget_spike(options), std::invalid_argument);
}

TEST(BudgetSpikeScenarioTest, StructuralInvariantsHoldAtAnySpeed) {
  wl::BudgetSpikeOptions options;
  // Shortened phases: this smoke gates the invariants that are
  // load-independent, not the calibrated spend magnitudes (those are the
  // bench's closed-loop contract, measured over the full-length phases).
  options.baseline_ns = 250 * kMillisecond;
  options.spike_ns = 500 * kMillisecond;
  options.post_ns = 400 * kMillisecond;
  const wl::BudgetSpikeResult result = wl::run_budget_spike(options);

  // Deterministic detections: the fabricated receive on each faulty
  // coordinator and the release-before-acquire client on each faulty
  // allocator must be caught at every degradation level.
  EXPECT_EQ(result.faults_expected, 2u);
  EXPECT_EQ(result.faulty_detected, 2u);
  EXPECT_EQ(result.missed_detections, 0u);
  EXPECT_EQ(result.false_positive_monitors, 0u);
  EXPECT_EQ(result.events_lost, 0u);

  // Every transition ±1 and chained from the previous level — prediction
  // is structurally shed before detection widens, and recovery retraces
  // the same ladder.
  EXPECT_TRUE(result.shed_order_ok);
  EXPECT_GE(result.max_level, result.final_level);
  EXPECT_LE(result.max_level, static_cast<int>(BudgetLevel::kWiden));
  EXPECT_EQ(result.transitions, result.budget_log.size());

  // Confirmed-cycle detection stayed live through the spike's measured
  // window.
  EXPECT_GT(result.waitfor_passes_during_spike, 0u);

  EXPECT_GT(result.operations, 0u);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_EQ(result.budget_fraction, options.budget.fraction);
}

}  // namespace
}  // namespace robmon::rt
