// Lock-order prediction: certified-interval joins (no fabricated orders),
// Goodlock witness distinctness, cycle detection over the accumulated
// relation, erase/re-arm on unregister, trace persistence (v3) and offline
// re-derivation, the CheckerPool prediction checkpoint end-to-end, and the
// gate-crossing workload contract (order cycle without a wait cycle warns;
// gate-serialized consistent order never warns).
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/fd_rules.hpp"
#include "core/lockorder.hpp"
#include "runtime/checker_pool.hpp"
#include "runtime/robust_monitor.hpp"
#include "workloads/allocator.hpp"
#include "workloads/gate_crossing.hpp"

namespace robmon {
namespace {

using core::LockOrderGraph;
using core::OrderCycle;
using core::OrderEdge;
using core::RuleId;
using rt::CheckerPool;
using rt::RobustMonitor;
using util::kMillisecond;

trace::SchedulingState state_at(util::TimeNs captured) {
  trace::SchedulingState state;
  state.captured_at = captured;
  return state;
}

void add_hold(trace::SchedulingState& state, trace::Pid pid,
              util::TimeNs since, std::uint64_t ticket) {
  state.holders.push_back({pid, 1, since, ticket});
}

void add_wait(trace::SchedulingState& state, trace::Pid pid,
              util::TimeNs since, std::uint64_t ticket) {
  if (state.cond_queues.empty()) state.cond_queues.push_back({0, {}});
  state.cond_queues[0].entries.push_back(
      {pid, trace::kNoSymbol, since, ticket});
}

// --- Certified-interval joins. -----------------------------------------------

TEST(LockOrderGraphTest, InconsistentHoldOrdersFormACycle) {
  LockOrderGraph graph;
  // p1 takes A then B; p2 takes B then A — all four holds overlap, the
  // classic inconsistent pair.  No thread ever blocks: this is an order
  // cycle without a wait cycle.
  trace::SchedulingState a = state_at(100);
  add_hold(a, 1, 10, 1);
  add_hold(a, 2, 40, 2);
  trace::SchedulingState b = state_at(100);
  add_hold(b, 1, 20, 3);
  add_hold(b, 2, 30, 4);
  graph.observe(1, "A", 1, a);
  graph.observe(2, "B", 1, b);

  EXPECT_EQ(graph.edge_count(), 2u);  // A->B (p1) and B->A (p2)
  const auto cycles = graph.find_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  ASSERT_EQ(cycles[0].steps.size(), 2u);
  EXPECT_EQ(cycles[0].steps[0].monitor, 1u);
  EXPECT_EQ(cycles[0].steps[0].name, "A");
  EXPECT_EQ(cycles[0].steps[0].witness.pid, 1);
  EXPECT_EQ(cycles[0].steps[1].monitor, 2u);
  EXPECT_EQ(cycles[0].steps[1].witness.pid, 2);
  const std::string text = core::describe(cycles[0]);
  EXPECT_NE(text.find("potential deadlock"), std::string::npos) << text;
  EXPECT_NE(text.find("A -> B"), std::string::npos) << text;
  EXPECT_NE(text.find("B -> A"), std::string::npos) << text;
  EXPECT_NE(text.find("p1"), std::string::npos) << text;
  EXPECT_NE(text.find("p2"), std::string::npos) << text;
}

TEST(LockOrderGraphTest, ConsistentOrderNeverWarns) {
  LockOrderGraph graph;
  // Both threads honour the global order A before B.
  trace::SchedulingState a = state_at(100);
  add_hold(a, 1, 10, 1);
  add_hold(a, 2, 30, 2);
  trace::SchedulingState b = state_at(100);
  add_hold(b, 1, 20, 3);
  add_hold(b, 2, 40, 4);
  graph.observe(1, "A", 1, a);
  graph.observe(2, "B", 1, b);
  EXPECT_EQ(graph.edge_count(), 1u);  // A->B only, two witnesses
  EXPECT_TRUE(graph.find_cycles().empty());
}

TEST(LockOrderGraphTest, SingleThreadReversalIsNotPlausible) {
  LockOrderGraph graph;
  // One thread takes A then B in episode one, B then A in episode two.
  // Both edges exist, but a thread cannot deadlock with itself across
  // episodes: the cycle has no pairwise-distinct witness assignment.
  trace::SchedulingState a1 = state_at(50);
  add_hold(a1, 1, 10, 1);
  trace::SchedulingState b1 = state_at(50);
  add_hold(b1, 1, 20, 2);
  graph.observe(1, "A", 1, a1);
  graph.observe(2, "B", 1, b1);
  trace::SchedulingState b2 = state_at(150);
  add_hold(b2, 1, 110, 3);
  trace::SchedulingState a2 = state_at(150);
  add_hold(a2, 1, 120, 4);
  graph.observe(2, "B", 2, b2);
  graph.observe(1, "A", 2, a2);

  EXPECT_EQ(graph.edge_count(), 2u);
  EXPECT_TRUE(graph.find_cycles().empty());

  // A second thread independently witnessing the reversal makes the cycle
  // plausible.
  trace::SchedulingState b3 = state_at(250);
  add_hold(b3, 2, 210, 5);
  trace::SchedulingState a3 = state_at(250);
  add_hold(a3, 2, 220, 6);
  graph.observe(2, "B", 3, b3);
  graph.observe(1, "A", 3, a3);
  EXPECT_EQ(graph.find_cycles().size(), 1u);

  // Epoch telemetry: each edge remembers the checkpoint epoch of its first
  // and latest witness (diagnostics on exported relations).
  for (const OrderEdge& edge : graph.edges()) {
    if (edge.from_name == "A") {
      EXPECT_EQ(edge.first_epoch, 1u);
      EXPECT_EQ(edge.last_epoch, 1u);
    } else {
      EXPECT_EQ(edge.first_epoch, 2u);
      EXPECT_EQ(edge.last_epoch, 3u);
    }
  }
}

TEST(LockOrderGraphTest, BlockedAcquisitionWitnessesTheEdge) {
  LockOrderGraph graph;
  // p1 holds A and is parked acquiring B: the direction is forced by the
  // kinds, not the timestamps.
  trace::SchedulingState a = state_at(100);
  add_hold(a, 1, 10, 1);
  trace::SchedulingState b = state_at(100);
  add_wait(b, 1, 20, 2);
  graph.observe(1, "A", 1, a);
  graph.observe(2, "B", 1, b);
  const auto edges = graph.edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from_name, "A");
  EXPECT_EQ(edges[0].to_name, "B");
  ASSERT_EQ(edges[0].witnesses.size(), 1u);
  EXPECT_TRUE(edges[0].witnesses[0].to_wait);
}

TEST(LockOrderGraphTest, DisjointIntervalsDoNotFabricateOrders) {
  LockOrderGraph graph;
  // p1 held A over [10, 50] (released), then held B over [60, 100]: the
  // certified intervals are disjoint, so no simultaneous-hold claim — and
  // no edge — may be derived, even though both observations coexist in
  // the store.
  trace::SchedulingState a = state_at(50);
  add_hold(a, 1, 10, 1);
  trace::SchedulingState b = state_at(100);
  add_hold(b, 1, 60, 2);
  graph.observe(1, "A", 1, a);
  graph.observe(2, "B", 1, b);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(LockOrderGraphTest, FrozenClockTiesAreUnordered) {
  LockOrderGraph graph;
  // Identical acquisition starts (frozen ManualClock): hold-hold pairs
  // cannot be ordered and must not become edges in either direction.
  trace::SchedulingState a = state_at(100);
  add_hold(a, 1, 100, 1);
  trace::SchedulingState b = state_at(100);
  add_hold(b, 1, 100, 2);
  graph.observe(1, "A", 1, a);
  graph.observe(2, "B", 1, b);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(LockOrderGraphTest, WaitWhileHoldingSameMonitorIsNotAnAcquisition) {
  LockOrderGraph graph;
  // p1 already holds a unit of B and is queued at B again (release or
  // re-entry); only the hold-hold edge B->A may appear, never A->B.
  trace::SchedulingState b = state_at(100);
  add_hold(b, 1, 5, 1);
  add_wait(b, 1, 30, 2);
  trace::SchedulingState a = state_at(100);
  add_hold(a, 1, 10, 3);
  graph.observe(2, "B", 1, b);
  graph.observe(1, "A", 1, a);
  const auto edges = graph.edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from_name, "B");
  EXPECT_EQ(edges[0].to_name, "A");
}

TEST(LockOrderGraphTest, EraseDropsAMonitorsEdges) {
  LockOrderGraph graph;
  trace::SchedulingState a = state_at(100);
  add_hold(a, 1, 10, 1);
  add_hold(a, 2, 40, 2);
  trace::SchedulingState b = state_at(100);
  add_hold(b, 1, 20, 3);
  add_hold(b, 2, 30, 4);
  graph.observe(1, "A", 1, a);
  graph.observe(2, "B", 1, b);
  ASSERT_EQ(graph.find_cycles().size(), 1u);
  graph.erase(2);
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_TRUE(graph.find_cycles().empty());
  EXPECT_EQ(graph.monitor_count(), 1u);
}

TEST(LockOrderGraphTest, WitnessCapBoundsMemoryNotCounting) {
  LockOrderGraph graph;
  for (int i = 0; i < 20; ++i) {
    const trace::Pid pid = i;
    trace::SchedulingState a = state_at(100 + i * 10);
    add_hold(a, pid, 100 + i * 10 - 5, static_cast<std::uint64_t>(2 * i + 1));
    trace::SchedulingState b = state_at(100 + i * 10);
    add_hold(b, pid, 100 + i * 10 - 2, static_cast<std::uint64_t>(2 * i + 2));
    graph.observe(1, "A", 1, a);
    graph.observe(2, "B", 1, b);
  }
  const auto edges = graph.edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].witnesses.size(), LockOrderGraph::kMaxWitnessesPerEdge);
  EXPECT_EQ(edges[0].witness_total, 20u);
  EXPECT_EQ(graph.witness_total(), 20u);
}

TEST(LockOrderGraphTest, LongerCycleFoundWhenShorterOneLacksWitnesses) {
  // SCC {1,2,3,4} with a single-thread triangle 1->2->3->1 (all pA, so
  // implausible) and an independently witnessed detour 1->2->4->1 (pA, pB,
  // pC): the detour must be reported even though the triangle — which a
  // one-representative-cycle-per-SCC scheme would likely pick — fails the
  // distinct-witness test.
  const auto edge = [](core::OrderMonitorId from, core::OrderMonitorId to,
                       trace::Pid pid) {
    OrderEdge e;
    e.from = from;
    e.to = to;
    e.from_name = "m" + std::to_string(from);
    e.to_name = "m" + std::to_string(to);
    e.witnesses = {{pid, 1, 2, false}};
    e.witness_total = 1;
    return e;
  };
  LockOrderGraph graph;
  graph.restore({edge(1, 2, 10), edge(2, 3, 10), edge(3, 1, 10),
                 edge(2, 4, 11), edge(4, 1, 12)});
  const auto cycles = graph.find_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  ASSERT_EQ(cycles[0].steps.size(), 3u);
  EXPECT_EQ(cycles[0].steps[0].monitor, 1u);
  EXPECT_EQ(cycles[0].steps[1].monitor, 2u);
  EXPECT_EQ(cycles[0].steps[2].monitor, 4u);
  EXPECT_EQ(cycles[0].steps[0].witness.pid, 10);
  EXPECT_EQ(cycles[0].steps[1].witness.pid, 11);
  EXPECT_EQ(cycles[0].steps[2].witness.pid, 12);
}

TEST(LockOrderGraphTest, RestoreFromPersistedRecordsRederivesCycles) {
  LockOrderGraph graph;
  trace::SchedulingState a = state_at(100);
  add_hold(a, 1, 10, 1);
  add_hold(a, 2, 40, 2);
  trace::SchedulingState b = state_at(100);
  add_hold(b, 1, 20, 3);
  add_hold(b, 2, 30, 4);
  graph.observe(1, "A", 1, a);
  graph.observe(2, "B", 1, b);
  const auto live = graph.find_cycles();
  ASSERT_EQ(live.size(), 1u);

  const std::vector<trace::LockOrderRecord> records =
      core::to_order_records(graph.edges());
  LockOrderGraph restored;
  restored.restore(core::order_edges_from_records(records));
  EXPECT_EQ(restored.edge_count(), graph.edge_count());
  const auto offline = restored.find_cycles();
  ASSERT_EQ(offline.size(), 1u);
  EXPECT_EQ(core::describe(offline[0]), core::describe(live[0]));
}

// --- Offline LO-Rule validator (fd_rules integration). -----------------------

TEST(ValidateLockOrderTest, ReportsPotentialDeadlockAcrossHistories) {
  trace::SchedulingState a = state_at(100);
  add_hold(a, 1, 10, 1);
  add_hold(a, 2, 40, 2);
  trace::SchedulingState b = state_at(100);
  add_hold(b, 1, 20, 3);
  add_hold(b, 2, 30, 4);
  const auto reports = core::validate_lock_order(
      {{"A", {&a}}, {"B", {&b}}}, 777);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].rule, RuleId::kLockOrderCycle);
  ASSERT_TRUE(reports[0].suspected.has_value());
  EXPECT_EQ(*reports[0].suspected, core::FaultKind::kPotentialDeadlock);
  EXPECT_EQ(reports[0].detected_at, 777);
  EXPECT_NE(reports[0].message.find("A"), std::string::npos);
  EXPECT_NE(reports[0].message.find("B"), std::string::npos);
}

TEST(ValidateLockOrderTest, CleanHistoriesReportNothing) {
  trace::SchedulingState a = state_at(100);
  add_hold(a, 1, 10, 1);
  trace::SchedulingState b = state_at(100);
  add_hold(b, 1, 20, 2);
  EXPECT_TRUE(
      core::validate_lock_order({{"A", {&a}}, {"B", {&b}}}, 5).empty());
}

// --- End-to-end through the CheckerPool. -------------------------------------

core::MonitorSpec fork_spec(const std::string& name) {
  core::MonitorSpec spec = core::MonitorSpec::allocator(name);
  spec.t_max = 30 * util::kSecond;
  spec.t_io = 30 * util::kSecond;
  spec.t_limit = 30 * util::kSecond;
  spec.check_period = 2 * kMillisecond;
  return spec;
}

struct TwoForkFixture {
  core::CollectingSink sink;
  CheckerPool pool;
  RobustMonitor m0, m1;
  wl::ResourceAllocator f0, f1;

  TwoForkFixture()
      : pool([this] {
          CheckerPool::Options options;
          options.waitfor_checkpoint_period = 60 * util::kSecond;  // manual
          options.waitfor_sink = &sink;
          options.lockorder_checkpoint_period = 60 * util::kSecond;
          options.lockorder_sink = &sink;
          return options;
        }()),
        m0(fork_spec("f0"), sink, with_pool()),
        m1(fork_spec("f1"), sink, with_pool()),
        f0(m0, 1),
        f1(m1, 1) {}

  RobustMonitor::Options with_pool() {
    RobustMonitor::Options options;
    options.checker_pool = &pool;
    return options;
  }

  std::size_t reports_with(RuleId rule) const {
    std::size_t n = 0;
    for (const auto& report : sink.reports()) {
      if (report.rule == rule) ++n;
    }
    return n;
  }
};

TEST(PoolLockOrderTest, OrderCycleWithoutWaitCycleWarnsExactlyOnce) {
  TwoForkFixture fx;
  // Episode one: p1 holds f0 and f1 together (f0 first); both snapshots
  // taken while held.  Episode two, after p1 fully released: p2 takes the
  // opposite order.  No thread ever blocks — no wait cycle exists at any
  // instant — yet the order relation closes a cycle.
  ASSERT_EQ(fx.f0.acquire(1), rt::Status::kOk);
  ASSERT_EQ(fx.f1.acquire(1), rt::Status::kOk);
  fx.m0.check_now();
  fx.m1.check_now();
  ASSERT_EQ(fx.f1.release(1), rt::Status::kOk);
  ASSERT_EQ(fx.f0.release(1), rt::Status::kOk);

  ASSERT_EQ(fx.f1.acquire(2), rt::Status::kOk);
  ASSERT_EQ(fx.f0.acquire(2), rt::Status::kOk);
  fx.m0.check_now();
  fx.m1.check_now();
  ASSERT_EQ(fx.f0.release(2), rt::Status::kOk);
  ASSERT_EQ(fx.f1.release(2), rt::Status::kOk);

  EXPECT_EQ(fx.pool.run_lockorder_checkpoint(), 1u);
  EXPECT_EQ(fx.pool.potential_deadlocks_reported(), 1u);
  ASSERT_EQ(fx.reports_with(RuleId::kLockOrderCycle), 1u);
  // The fault that never happened must not be reported as one that did.
  EXPECT_EQ(fx.pool.run_waitfor_checkpoint(), 0u);
  EXPECT_EQ(fx.reports_with(RuleId::kWfCycleDetected), 0u);

  std::string message;
  for (const auto& report : fx.sink.reports()) {
    if (report.rule == RuleId::kLockOrderCycle) message = report.message;
  }
  EXPECT_NE(message.find("f0"), std::string::npos) << message;
  EXPECT_NE(message.find("f1"), std::string::npos) << message;
  EXPECT_NE(message.find("p1"), std::string::npos) << message;
  EXPECT_NE(message.find("p2"), std::string::npos) << message;

  // The relation is historical: the cycle persists, but the warning fired.
  EXPECT_EQ(fx.pool.run_lockorder_checkpoint(), 1u);
  EXPECT_EQ(fx.reports_with(RuleId::kLockOrderCycle), 1u);
  // Each pass bumps the prediction epoch (contribution-version telemetry).
  EXPECT_EQ(fx.pool.lockorder_epoch(), 2u);
}

TEST(PoolLockOrderTest, GateSerializedConsistentOrderNeverWarns) {
  TwoForkFixture fx;
  // Both threads honour f0-before-f1 (serialized here by construction).
  for (trace::Pid pid = 1; pid <= 2; ++pid) {
    ASSERT_EQ(fx.f0.acquire(pid), rt::Status::kOk);
    ASSERT_EQ(fx.f1.acquire(pid), rt::Status::kOk);
    fx.m0.check_now();
    fx.m1.check_now();
    ASSERT_EQ(fx.f1.release(pid), rt::Status::kOk);
    ASSERT_EQ(fx.f0.release(pid), rt::Status::kOk);
  }
  EXPECT_EQ(fx.pool.run_lockorder_checkpoint(), 0u);
  EXPECT_EQ(fx.reports_with(RuleId::kLockOrderCycle), 0u);
  EXPECT_GT(fx.pool.lockorder_edge_count(), 0u);  // the relation did record
}

TEST(PoolLockOrderTest, UnregisteringAParticipantReArmsTheCycle) {
  TwoForkFixture fx;
  {
    RobustMonitor churn(fork_spec("churn"), fx.sink, fx.with_pool());
    wl::ResourceAllocator fork(churn, 1);
    // churn -> f0 from p1; f0 -> churn from p2: cycle through churn.
    ASSERT_EQ(fork.acquire(1), rt::Status::kOk);
    ASSERT_EQ(fx.f0.acquire(1), rt::Status::kOk);
    churn.check_now();
    fx.m0.check_now();
    ASSERT_EQ(fx.f0.release(1), rt::Status::kOk);
    ASSERT_EQ(fork.release(1), rt::Status::kOk);
    ASSERT_EQ(fx.f0.acquire(2), rt::Status::kOk);
    ASSERT_EQ(fork.acquire(2), rt::Status::kOk);
    churn.check_now();
    fx.m0.check_now();
    ASSERT_EQ(fork.release(2), rt::Status::kOk);
    ASSERT_EQ(fx.f0.release(2), rt::Status::kOk);
    EXPECT_EQ(fx.pool.run_lockorder_checkpoint(), 1u);
    EXPECT_EQ(fx.reports_with(RuleId::kLockOrderCycle), 1u);
  }  // ~RobustMonitor unregisters churn from the pool

  // Its edges went with it: nothing left to warn about.
  EXPECT_EQ(fx.pool.run_lockorder_checkpoint(), 0u);
  EXPECT_EQ(fx.reports_with(RuleId::kLockOrderCycle), 1u);
}

TEST(PoolLockOrderTest, RegisterUnregisterChurnUnderPeriodicCheckpoints) {
  core::CollectingSink sink;
  CheckerPool::Options options;
  options.lockorder_checkpoint_period = 1 * kMillisecond;
  options.lockorder_sink = &sink;
  CheckerPool pool(options);
  RobustMonitor::Options monitor_options;
  monitor_options.checker_pool = &pool;

  RobustMonitor steady(fork_spec("steady"), sink, monitor_options);
  wl::ResourceAllocator steady_fork(steady, 1);
  steady.start_checking();

  // Monitors register, contribute consistent-order holds, and unregister
  // while periodic prediction passes race against the churn.
  for (int round = 0; round < 60; ++round) {
    RobustMonitor churn(fork_spec("churn"), sink, monitor_options);
    wl::ResourceAllocator fork(churn, 1);
    churn.start_checking();
    ASSERT_EQ(steady_fork.acquire(7), rt::Status::kOk);
    ASSERT_EQ(fork.acquire(7), rt::Status::kOk);
    churn.check_now();
    steady.check_now();
    ASSERT_EQ(fork.release(7), rt::Status::kOk);
    ASSERT_EQ(steady_fork.release(7), rt::Status::kOk);
    if (round >= 20 && pool.lockorder_checkpoints() >= 5) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  steady.stop_checking();
  EXPECT_GT(pool.lockorder_checkpoints(), 0u);
  EXPECT_EQ(pool.potential_deadlocks_reported(), 0u);
  for (const auto& report : sink.reports()) {
    EXPECT_NE(report.rule, RuleId::kLockOrderCycle) << report.message;
  }
}

// --- Gate-crossing workload contract. ----------------------------------------

TEST(GateCrossingTest, RotatedOrdersArePredictedWithZeroFalsePositives) {
  wl::GateCrossingOptions options;
  options.rounds = 3;
  const wl::GateCrossingResult result = wl::run_gate_crossing(options);
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.potential_deadlocks, 1u);
  EXPECT_EQ(result.global_deadlocks, 0u);
  ASSERT_FALSE(result.cycles.empty());
  EXPECT_NE(result.cycles[0].find("lane-"), std::string::npos)
      << result.cycles[0];
  EXPECT_GT(result.order_edges, 0u);
}

TEST(GateCrossingTest, ConsistentOrderStaysSilent) {
  wl::GateCrossingOptions options;
  options.consistent_order = true;
  options.rounds = 3;
  const wl::GateCrossingResult result = wl::run_gate_crossing(options);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.potential_deadlocks, 0u);
  EXPECT_EQ(result.global_deadlocks, 0u);
}

}  // namespace
}  // namespace robmon
