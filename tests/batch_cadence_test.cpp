// Batched, adaptive-cadence checking engine tests: period clamping (no
// hot-spin on check_period == 0), dispatch amortization across a batch,
// backlog coalescing under a detector that outlasts its period, and the
// EWMA cadence controller (stretch on idle, snap back on traffic, never
// stretch an occupied monitor — the Tmax < T guarantee).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/checker_pool.hpp"
#include "runtime/robust_monitor.hpp"
#include "workloads/loadgen.hpp"

namespace robmon::rt {
namespace {

using core::CollectingSink;
using core::MonitorSpec;
using util::kMillisecond;

constexpr util::TimeNs kPeriodFloor = 100'000;  // CheckerPool's 100 µs clamp

MonitorSpec relaxed_timers(MonitorSpec spec, util::TimeNs check_period) {
  spec.t_max = 5 * util::kSecond;
  spec.t_io = 5 * util::kSecond;
  spec.t_limit = 5 * util::kSecond;
  spec.check_period = check_period;
  return spec;
}

/// A raw monitor/detector pair registered directly with a pool (no
/// RobustMonitor wrapper), so tests control MonitorOptions fully.
struct RawMonitor {
  RawMonitor(MonitorSpec spec, const util::Clock& clock)
      : monitor(spec, clock), detector(spec, monitor.symbols(), sink) {
    detector.initialize(monitor.snapshot());
  }
  CollectingSink sink;
  HoareMonitor monitor;
  core::Detector detector;
};

TEST(BatchCadenceTest, ZeroPeriodClampedToFloorAndDoesNotHotSpin) {
  CheckerPool pool(CheckerPool::Options{.threads = 1});
  util::ManualClock clock(0);
  RawMonitor raw(relaxed_timers(MonitorSpec::manager("zero"), 0), clock);
  const auto id = pool.add(raw.monitor, raw.detector);
  EXPECT_EQ(pool.period(id), kPeriodFloor);
  EXPECT_EQ(pool.effective_period(id), kPeriodFloor);

  pool.schedule(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pool.unschedule(id);
  // 50 ms at the 100 µs floor is ≤ ~500 checks; a hot spin (zero period
  // honored literally) would be orders of magnitude more.
  EXPECT_GT(pool.checks_executed(), 0u);
  EXPECT_LT(pool.checks_executed(), 5000u);
}

TEST(BatchCadenceTest, NegativePeriodAndBadKnobsRejected) {
  CheckerPool pool;
  util::ManualClock clock(0);
  RawMonitor raw(relaxed_timers(MonitorSpec::manager("neg"), -1), clock);
  EXPECT_THROW(pool.add(raw.monitor, raw.detector), std::invalid_argument);

  RawMonitor ok(relaxed_timers(MonitorSpec::manager("ok"), kMillisecond),
                clock);
  CheckerPool::MonitorOptions bad_stretch;
  bad_stretch.max_stretch = 0.5;
  EXPECT_THROW(pool.add(ok.monitor, ok.detector, bad_stretch),
               std::invalid_argument);
  CheckerPool::MonitorOptions bad_alpha;
  bad_alpha.ewma_alpha = 0.0;
  EXPECT_THROW(pool.add(ok.monitor, ok.detector, bad_alpha),
               std::invalid_argument);
}

TEST(BatchCadenceTest, AdaptiveCadenceStretchesIdleMonitorsGeometrically) {
  // check_now() drives the controller deterministically — no wall-clock
  // sleeps; the ManualClock stays frozen throughout.
  util::ManualClock clock(1000);
  CheckerPool::Options options;
  options.clock = &clock;
  CheckerPool pool(options);
  RawMonitor raw(relaxed_timers(MonitorSpec::manager("idle"), kMillisecond),
                 clock);
  CheckerPool::MonitorOptions mo;
  mo.max_stretch = 8.0;
  const auto id = pool.add(raw.monitor, raw.detector, mo);

  // First check drains the (empty) segment: idle → stretch doubles.
  std::vector<double> ladder;
  for (int i = 0; i < 6; ++i) {
    pool.check_now(id);
    ladder.push_back(pool.stretch(id));
    // The ceiling is always respected.
    EXPECT_LE(pool.effective_period(id), 8 * kMillisecond);
    EXPECT_GE(pool.effective_period(id), kMillisecond);
  }
  EXPECT_EQ(ladder.front(), 2.0);  // 1 → 2 on the first idle check
  EXPECT_EQ(ladder.back(), 8.0);   // capped at max_stretch
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GE(ladder[i], ladder[i - 1]);  // monotone while idle
  }
  EXPECT_EQ(pool.effective_period(id), 8 * kMillisecond);
  EXPECT_EQ(raw.sink.count(), 0u);
}

TEST(BatchCadenceTest, AdaptiveCadenceSnapsBackOnTraffic) {
  util::ManualClock clock(1000);
  CheckerPool::Options options;
  options.clock = &clock;
  CheckerPool pool(options);
  RawMonitor raw(relaxed_timers(MonitorSpec::manager("bursty"), kMillisecond),
                 clock);
  CheckerPool::MonitorOptions mo;
  mo.max_stretch = 8.0;
  const auto id = pool.add(raw.monitor, raw.detector, mo);

  for (int i = 0; i < 6; ++i) pool.check_now(id);
  ASSERT_EQ(pool.stretch(id), 8.0);  // fully stretched while idle

  // A burst: events arrive → the very next check snaps to base cadence.
  ASSERT_EQ(raw.monitor.enter(1, "Op"), Status::kOk);
  raw.monitor.exit(1);
  pool.check_now(id);
  EXPECT_EQ(pool.stretch(id), 1.0);
  EXPECT_EQ(pool.effective_period(id), kMillisecond);

  // Idle again: it re-stretches from the bottom of the ladder.
  pool.check_now(id);
  EXPECT_EQ(pool.stretch(id), 2.0);
  EXPECT_EQ(raw.sink.count(), 0u);
}

TEST(BatchCadenceTest, OccupiedMonitorIsNeverStretched) {
  // The Tmax < T detection-latency relation (Section 3.3): timer rules
  // (ST-5/6/8c) fire only against states with somebody running or queued,
  // so such states must keep the base cadence.  An occupied monitor never
  // stretches, no matter how many empty segments in a row it drains.
  util::ManualClock clock(1000);
  CheckerPool::Options options;
  options.clock = &clock;
  CheckerPool pool(options);
  RawMonitor raw(
      relaxed_timers(MonitorSpec::manager("occupied"), kMillisecond), clock);
  CheckerPool::MonitorOptions mo;
  mo.max_stretch = 8.0;
  const auto id = pool.add(raw.monitor, raw.detector, mo);

  ASSERT_EQ(raw.monitor.enter(1, "Op"), Status::kOk);  // stays inside
  for (int i = 0; i < 6; ++i) {
    pool.check_now(id);
    EXPECT_EQ(pool.stretch(id), 1.0) << "stretched an occupied monitor";
    EXPECT_EQ(pool.effective_period(id), kMillisecond);
  }
  raw.monitor.exit(1);
  pool.check_now(id);  // drains the exit event: still base cadence
  EXPECT_EQ(pool.stretch(id), 1.0);
  pool.check_now(id);  // idle AND empty now: stretching may begin
  EXPECT_EQ(pool.stretch(id), 2.0);
  EXPECT_EQ(raw.sink.count(), 0u);
}

TEST(BatchCadenceTest, StretchedPeriodClampedToSmallestTimerThreshold) {
  // Detection-latency bound: even fully stretched, the effective period
  // never exceeds min(Tmax, Tio, Tlimit), so an episode beginning mid-
  // stretched-interval meets its first (rule-evaluating) check within one
  // threshold of onset.
  util::ManualClock clock(1000);
  CheckerPool::Options options;
  options.clock = &clock;
  CheckerPool pool(options);
  core::MonitorSpec spec = MonitorSpec::manager("clamped");
  spec.check_period = kMillisecond;
  spec.t_max = 3 * kMillisecond;  // smallest threshold
  spec.t_io = 5 * kMillisecond;
  spec.t_limit = 5 * kMillisecond;
  RawMonitor raw(spec, clock);
  CheckerPool::MonitorOptions mo;
  mo.max_stretch = 16.0;  // would be 16 ms unclamped
  const auto id = pool.add(raw.monitor, raw.detector, mo);

  for (int i = 0; i < 8; ++i) pool.check_now(id);
  EXPECT_EQ(pool.stretch(id), 16.0);  // the ladder itself is uncapped
  EXPECT_EQ(pool.effective_period(id), 3 * kMillisecond);  // the period is
  EXPECT_EQ(raw.sink.count(), 0u);
}

TEST(BatchCadenceTest, BatchDispatchAmortizesWakeupsAcrossDueMonitors) {
  // M monitors on one cadence: the batched engine serves a deadline wave in
  // a few dispatches, the per-item engine pays one dispatch per check.
  constexpr std::size_t kMonitors = 16;
  struct Run {
    std::size_t max_batch;
    std::uint64_t checks = 0;
    std::uint64_t dispatches = 0;
  };
  Run batched{0};
  Run per_item{1};
  for (Run* run : {&batched, &per_item}) {
    CheckerPool::Options options;
    options.threads = 1;
    options.max_batch = run->max_batch;
    CheckerPool pool(options);
    util::ManualClock clock(0);
    std::vector<std::unique_ptr<RawMonitor>> raws;
    std::vector<CheckerPool::MonitorId> ids;
    for (std::size_t i = 0; i < kMonitors; ++i) {
      raws.push_back(std::make_unique<RawMonitor>(
          relaxed_timers(MonitorSpec::manager("m" + std::to_string(i)),
                         2 * kMillisecond),
          clock));
      ids.push_back(pool.add(raws.back()->monitor, raws.back()->detector));
    }
    for (const auto id : ids) pool.schedule(id);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    for (const auto id : ids) pool.unschedule(id);
    run->checks = pool.checks_executed();
    run->dispatches = pool.dispatches();
    for (const auto& raw : raws) EXPECT_EQ(raw->sink.count(), 0u);
  }
  ASSERT_GT(batched.checks, kMonitors);
  ASSERT_GT(per_item.checks, kMonitors);
  // Per-item: one dispatch per check, exactly.
  EXPECT_GE(per_item.dispatches, per_item.checks);
  // Batched: ≥2× fewer dispatches per check (in practice ~kMonitors× —
  // the whole wave lands in one batch).
  EXPECT_LE(batched.dispatches * 2, batched.checks);
}

TEST(BatchCadenceTest, CoalescePolicyAbsorbsBacklogOfSlowChecks) {
  // A check that outlasts its period (on_checkpoint sleeps 8× the period)
  // must not build an unbounded backlog: kCoalesce slips the grid and
  // counts the absorbed deadlines.
  CheckerPool::Options options;
  options.threads = 1;
  options.backlog_policy = CheckerPool::BacklogPolicy::kCoalesce;
  CheckerPool pool(options);
  util::ManualClock clock(0);
  RawMonitor raw(relaxed_timers(MonitorSpec::manager("slow"), 2 * kMillisecond),
                 clock);
  CheckerPool::MonitorOptions mo;
  mo.on_checkpoint = [](const trace::SchedulingState&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(16));
  };
  const auto id = pool.add(raw.monitor, raw.detector, mo);
  pool.schedule(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  pool.unschedule(id);
  const std::uint64_t checks = pool.checks_executed();
  EXPECT_GT(checks, 2u);
  // Cadence says ~100 checks in 200 ms; the 16 ms check bounds it near
  // ~12.  Generous ceiling: well under half the nominal cadence.
  EXPECT_LT(checks, 50u);
  EXPECT_GT(pool.checks_coalesced(), 0u);
  EXPECT_EQ(raw.sink.count(), 0u);
}

TEST(BatchCadenceTest, RunAllPolicyBoundsCatchUpDepth) {
  CheckerPool::Options options;
  options.threads = 1;
  options.backlog_policy = CheckerPool::BacklogPolicy::kRunAll;
  options.max_backlog = 2;
  CheckerPool pool(options);
  util::ManualClock clock(0);
  RawMonitor raw(
      relaxed_timers(MonitorSpec::manager("catchup"), 2 * kMillisecond),
      clock);
  CheckerPool::MonitorOptions mo;
  mo.on_checkpoint = [](const trace::SchedulingState&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(16));
  };
  const auto id = pool.add(raw.monitor, raw.detector, mo);
  pool.schedule(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  pool.unschedule(id);
  // Catch-up is depth-bounded, so the run completes and the slots beyond
  // max_backlog are recorded as coalesced.
  EXPECT_GT(pool.checks_executed(), 2u);
  EXPECT_GT(pool.checks_coalesced(), 0u);
  EXPECT_EQ(raw.sink.count(), 0u);
}

TEST(MultiLoadBatchingTest, BatchedAndAdaptiveEnginesMissNoInjectedFault) {
  // The engine-shape sweep: per-item baseline, default batched, and batched
  // + adaptive cadence must all detect every injected fault with zero false
  // positives — batching and stretching change overhead, never coverage.
  struct Shape {
    std::size_t max_batch;
    double max_stretch;
  };
  for (const Shape shape : {Shape{1, 1.0}, Shape{0, 1.0}, Shape{0, 4.0}}) {
    wl::MultiLoadOptions options;
    options.monitors = 6;
    options.threads_per_monitor = 2;
    options.ops_per_thread = 2000;
    options.faulty_monitors = 2;
    options.mode = wl::CheckerMode::kSharedPool;
    options.check_period = 1 * kMillisecond;
    options.max_batch = shape.max_batch;
    options.max_stretch = shape.max_stretch;
    const wl::MultiLoadResult result = wl::run_multi_load(options);
    EXPECT_EQ(result.missed_detections, 0u)
        << "max_batch=" << shape.max_batch
        << " max_stretch=" << shape.max_stretch;
    EXPECT_EQ(result.faulty_detected, 2u);
    EXPECT_EQ(result.false_positive_monitors, 0u);
    EXPECT_GT(result.checks_run, 0u);
    if (shape.max_batch == 1 && result.dispatches > 0) {
      // Per-item: one dispatch per periodic check; only the final
      // synchronous per-monitor checks lift the ratio above 1.  The slack
      // absorbs the one-ULP rounding gap between (d + M) / d and
      // 1 + M / d when the counts land exactly on the bound.
      EXPECT_LE(result.avg_batch,
                1.0 + static_cast<double>(options.monitors) /
                          static_cast<double>(result.dispatches) +
                    1e-9);
    }
  }
}

}  // namespace
}  // namespace robmon::rt
