// The paper's robustness evaluation as a property test (Section 4: "Faults
// of different kinds as classified ... are injected randomly ... The
// results show that all injected faults are detected"):
//
//   * completeness — for every one of the 21 taxonomy classes and several
//     schedule seeds, a scripted injection is detected by one of the rules
//     the catalog maps it to;
//   * soundness — fault-free runs of the same workloads over many seeds
//     produce zero reports.
#include <gtest/gtest.h>

#include <sstream>

#include "core/fault.hpp"
#include "inject/catalog.hpp"
#include "workloads/sim_scenarios.hpp"

namespace robmon::wl {
namespace {

std::string render_reports(const CoverageOutcome& outcome) {
  std::ostringstream out;
  for (const auto& report : outcome.reports) {
    out << "  " << core::to_string(report.rule) << " pid=" << report.pid
        << ": " << report.message << "\n";
  }
  return out.str();
}

using CoverageParam = std::tuple<core::FaultKind, std::uint64_t>;

class CoverageTest : public ::testing::TestWithParam<CoverageParam> {};

TEST_P(CoverageTest, InjectedFaultIsDetected) {
  const auto [kind, seed] = GetParam();
  const CoverageOutcome outcome = run_coverage_trial(kind, seed);
  EXPECT_TRUE(outcome.injected)
      << "fault " << core::to_string(kind) << " never armed under seed "
      << seed;
  EXPECT_TRUE(outcome.detected)
      << "fault " << core::paper_designation(kind) << " ("
      << core::to_string(kind) << ") undetected under seed " << seed
      << "; reports were:\n"
      << render_reports(outcome);
  if (outcome.detected) {
    EXPECT_GE(outcome.detection_check, 1u);
  }
}

std::vector<CoverageParam> coverage_params() {
  std::vector<CoverageParam> params;
  for (const core::FaultKind kind : core::all_fault_kinds()) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      params.emplace_back(kind, seed);
    }
  }
  return params;
}

std::string coverage_param_name(
    const ::testing::TestParamInfo<CoverageParam>& info) {
  const auto [kind, seed] = info.param;
  std::string name(core::to_string(kind));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_seed" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(AllFaultKinds, CoverageTest,
                         ::testing::ValuesIn(coverage_params()),
                         coverage_param_name);

using SoundnessParam = std::tuple<core::MonitorType, std::uint64_t>;

class SoundnessTest : public ::testing::TestWithParam<SoundnessParam> {};

TEST_P(SoundnessTest, FaultFreeRunReportsNothing) {
  const auto [type, seed] = GetParam();
  EXPECT_EQ(run_fault_free_trial(type, seed), 0u)
      << "spurious report on " << core::to_string(type) << " seed " << seed;
}

std::vector<SoundnessParam> soundness_params() {
  std::vector<SoundnessParam> params;
  for (const core::MonitorType type :
       {core::MonitorType::kCommunicationCoordinator,
        core::MonitorType::kResourceAllocator}) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      params.emplace_back(type, seed);
    }
  }
  return params;
}

std::string soundness_param_name(
    const ::testing::TestParamInfo<SoundnessParam>& info) {
  const auto [type, seed] = info.param;
  return std::string(core::to_string(type)) + "_seed" +
         std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(FaultFree, SoundnessTest,
                         ::testing::ValuesIn(soundness_params()),
                         soundness_param_name);

TEST(CoverageCatalogTest, CoversAllTwentyOneKinds) {
  EXPECT_EQ(inject::fault_catalog().size(), core::kFaultKindCount);
  for (const core::FaultKind kind : core::all_fault_kinds()) {
    EXPECT_NO_THROW(inject::catalog_entry(kind));
    EXPECT_FALSE(inject::catalog_entry(kind).detecting_rules.empty());
  }
}

TEST(CoverageCatalogTest, LevelsMatchTaxonomy) {
  for (const auto& entry : inject::fault_catalog()) {
    const core::FaultLevel level = core::level_of(entry.kind);
    if (level == core::FaultLevel::kUserProcess) {
      EXPECT_EQ(entry.exercised_on, core::MonitorType::kResourceAllocator);
    } else {
      EXPECT_EQ(entry.exercised_on,
                core::MonitorType::kCommunicationCoordinator);
    }
  }
}

}  // namespace
}  // namespace robmon::wl
