// Interposition backend: the SyntheticMonitor state machine (observed-op
// folding, guarded transitions, backpressure), the re-entrancy guard, the
// process Runtime's registry and fork retirement, ROBMON_* env parsing,
// and the equivalence contract — a native HoareMonitor deadlock and the
// same logical schedule adapted through synthetic monitors must produce
// the same wait-for edges and the same confirmed verdict.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.hpp"
#include "core/monitor_spec.hpp"
#include "interpose/runtime.hpp"
#include "interpose/synthetic_monitor.hpp"
#include "runtime/checker_pool.hpp"
#include "runtime/hoare_monitor.hpp"
#include "util/clock.hpp"
#include "util/flags.hpp"

namespace robmon {
namespace {

using core::RuleId;
using interpose::ReentryGuard;
using interpose::Runtime;
using interpose::SyntheticMonitor;
using rt::CheckerPool;
using rt::HoareMonitor;

SyntheticMonitor::Config small_config(std::size_t ring_capacity = 64) {
  SyntheticMonitor::Config config;
  config.ring_capacity = ring_capacity;
  return config;
}

// --- SyntheticMonitor state machine. -----------------------------------------

TEST(SyntheticMonitorTest, AcquireShowsOwnerAsRunningAndHolder) {
  util::ManualClock clock;
  clock.set(10);
  SyntheticMonitor m("m", SyntheticMonitor::Kind::kMutex, clock,
                     small_config());
  m.lock_acquired(1);
  const trace::SchedulingState state = m.snapshot();
  EXPECT_EQ(state.running, 1);
  EXPECT_NE(state.running_ticket, 0u);
  ASSERT_EQ(state.holders.size(), 1u);
  EXPECT_EQ(state.holders[0].pid, 1);
  EXPECT_EQ(state.holders[0].units, 1);
  EXPECT_EQ(state.holders[0].ticket, state.running_ticket);
  EXPECT_TRUE(state.entry_queue.empty());
}

TEST(SyntheticMonitorTest, BlockedWaitsInEntryQueueUntilAcquire) {
  util::ManualClock clock;
  SyntheticMonitor m("m", SyntheticMonitor::Kind::kMutex, clock,
                     small_config());
  m.lock_acquired(1);
  m.lock_blocked(2);
  trace::SchedulingState state = m.snapshot();
  ASSERT_EQ(state.entry_queue.size(), 1u);
  EXPECT_EQ(state.entry_queue[0].pid, 2);
  EXPECT_EQ(state.running, 1);

  m.unlocked(1);
  m.lock_acquired(2);
  state = m.snapshot();
  EXPECT_TRUE(state.entry_queue.empty());
  EXPECT_EQ(state.running, 2);
}

TEST(SyntheticMonitorTest, RecursiveAcquireTracksDepth) {
  util::ManualClock clock;
  SyntheticMonitor m("m", SyntheticMonitor::Kind::kMutex, clock,
                     small_config());
  m.lock_acquired(1);
  m.lock_acquired(1);
  trace::SchedulingState state = m.snapshot();
  ASSERT_EQ(state.holders.size(), 1u);
  EXPECT_EQ(state.holders[0].units, 2);

  m.unlocked(1);
  state = m.snapshot();
  EXPECT_EQ(state.running, 1);  // Still owned at depth 1.
  m.unlocked(1);
  state = m.snapshot();
  EXPECT_FALSE(state.has_running());
  EXPECT_TRUE(state.holders.empty());
}

TEST(SyntheticMonitorTest, GuardedTransitionsIgnoreMisorderedOps) {
  util::ManualClock clock;
  SyntheticMonitor m("m", SyntheticMonitor::Kind::kMutex, clock,
                     small_config());
  // Unlock by a thread whose acquisition was never observed
  // (pthread_mutex_timedlock is not interposed): must be a no-op.
  m.unlocked(7);
  EXPECT_FALSE(m.snapshot().has_running());

  m.lock_acquired(1);
  m.unlocked(9);  // Not the owner: no-op.
  EXPECT_EQ(m.snapshot().running, 1);

  m.lock_cancelled(5);  // Never blocked: no-op.
  EXPECT_TRUE(m.snapshot().entry_queue.empty());
}

TEST(SyntheticMonitorTest, CancelledBlockLeavesTheEntryQueue) {
  util::ManualClock clock;
  SyntheticMonitor m("m", SyntheticMonitor::Kind::kMutex, clock,
                     small_config());
  m.lock_acquired(1);
  m.lock_blocked(2);
  m.lock_cancelled(2);  // e.g. EDEADLK from the real lock.
  const trace::SchedulingState state = m.snapshot();
  EXPECT_TRUE(state.entry_queue.empty());
  EXPECT_EQ(state.running, 1);
}

TEST(SyntheticMonitorTest, CondParkAndUnpark) {
  util::ManualClock clock;
  SyntheticMonitor c("c", SyntheticMonitor::Kind::kCondition, clock,
                     small_config());
  c.cond_parked(5);
  trace::SchedulingState state = c.snapshot();
  ASSERT_EQ(state.cond_queues.size(), 1u);
  ASSERT_EQ(state.cond_queues[0].entries.size(), 1u);
  EXPECT_EQ(state.cond_queues[0].entries[0].pid, 5);
  // A condition monitor never reports ownership: it can contribute waits
  // but can never close a wait-for edge.
  EXPECT_FALSE(state.has_running());
  EXPECT_TRUE(state.holders.empty());

  c.cond_signalled(6, /*broadcast=*/false);
  c.cond_unparked(5);
  state = c.snapshot();
  EXPECT_TRUE(state.cond_queues[0].entries.empty());
}

TEST(SyntheticMonitorTest, ResetClearsEverything) {
  util::ManualClock clock;
  SyntheticMonitor m("m", SyntheticMonitor::Kind::kMutex, clock,
                     small_config());
  m.lock_acquired(1);
  m.lock_blocked(2);
  m.reset();  // pthread_mutex_destroy: the address may be reused.
  const trace::SchedulingState state = m.snapshot();
  EXPECT_FALSE(state.has_running());
  EXPECT_TRUE(state.entry_queue.empty());
  EXPECT_TRUE(state.holders.empty());
}

TEST(SyntheticMonitorTest, TicketsDistinguishWaitEpisodes) {
  // Two blocking episodes under a frozen clock share a timestamp but must
  // never share a ticket — the pool's live validation depends on it.
  util::ManualClock clock;
  SyntheticMonitor m("m", SyntheticMonitor::Kind::kMutex, clock,
                     small_config());
  m.lock_blocked(2);
  const std::uint64_t first = m.snapshot().entry_queue[0].ticket;
  m.lock_acquired(2);
  m.unlocked(2);
  m.lock_blocked(2);
  const std::uint64_t second = m.snapshot().entry_queue[0].ticket;
  EXPECT_NE(first, 0u);
  EXPECT_NE(second, 0u);
  EXPECT_NE(first, second);
}

TEST(SyntheticMonitorTest, BackpressureAppliesInlineWithoutLoss) {
  util::ManualClock clock;
  SyntheticMonitor m("m", SyntheticMonitor::Kind::kMutex, clock,
                     small_config(/*ring_capacity=*/2));
  // Nobody drains while a burst far larger than the ring arrives: the
  // producer must fold the backlog inline, never drop it.
  for (int i = 0; i < 64; ++i) {
    m.lock_acquired(1);
    m.unlocked(1);
  }
  EXPECT_GT(m.backpressure_syncs(), 0u);
  EXPECT_EQ(m.events_lost(), 0u);
  const trace::SchedulingState state = m.snapshot();
  EXPECT_FALSE(state.has_running());
  // Every acquire/release pair was recorded despite the tiny ring.
  EXPECT_EQ(m.drain_segment().size(), 128u);
}

// --- Equivalence: native monitor vs. shim-adapted observation. ---------------

core::MonitorSpec native_spec(const std::string& name) {
  core::MonitorSpec spec = core::MonitorSpec::manager(name);
  spec.t_max = 30 * util::kSecond;
  spec.t_io = 30 * util::kSecond;
  spec.t_limit = 30 * util::kSecond;
  return spec;
}

CheckerPool::Options parked_pool_options(core::ReportSink* sink) {
  CheckerPool::Options options;
  // Periodic checkpoints parked far out: only the synchronous passes the
  // test drives may run.
  options.waitfor_checkpoint_period = 3600 * util::kSecond;
  options.waitfor_sink = sink;
  return options;
}

std::string wf_message(const core::CollectingSink& sink) {
  for (const auto& report : sink.reports()) {
    if (report.rule == RuleId::kWfCycleDetected) return report.message;
  }
  return {};
}

TEST(InterposeEquivalenceTest, NativeAndSyntheticRunsAgreeOnTheCycle) {
  // Native side: two Hoare monitors, two real threads, a cross deadlock —
  // p1 runs inside A and blocks on B's entry queue, p2 the reverse.
  core::CollectingSink native_sink;
  CheckerPool native_pool(parked_pool_options(&native_sink));
  HoareMonitor a(native_spec("A"), util::SteadyClock::instance());
  HoareMonitor b(native_spec("B"), util::SteadyClock::instance());
  const CheckerPool::MonitorId ida = native_pool.add(a);
  const CheckerPool::MonitorId idb = native_pool.add(b);

  std::atomic<bool> a_held{false}, b_held{false};
  std::thread t1([&] {
    ASSERT_EQ(a.enter(1, "lock"), rt::Status::kOk);
    a_held.store(true);
    while (!b_held.load()) std::this_thread::yield();
    (void)b.enter(1, "lock");  // Blocks; released by poison().
  });
  std::thread t2([&] {
    ASSERT_EQ(b.enter(2, "lock"), rt::Status::kOk);
    b_held.store(true);
    while (!a_held.load()) std::this_thread::yield();
    (void)a.enter(2, "lock");
  });
  for (int spin = 0; spin < 4000; ++spin) {
    if (!a.snapshot().entry_queue.empty() &&
        !b.snapshot().entry_queue.empty()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  ASSERT_EQ(a.snapshot().entry_queue.size(), 1u);
  ASSERT_EQ(b.snapshot().entry_queue.size(), 1u);

  native_pool.check_now(ida);
  native_pool.check_now(idb);
  EXPECT_EQ(native_pool.run_waitfor_checkpoint(), 1u);
  EXPECT_EQ(native_pool.deadlocks_reported(), 1u);
  const std::string native_message = wf_message(native_sink);

  a.poison();
  b.poison();
  t1.join();
  t2.join();
  native_pool.remove(ida);
  native_pool.remove(idb);

  // Synthetic side: the same logical schedule, but delivered as the
  // observations the LD_PRELOAD wrappers would push — no real blocking.
  core::CollectingSink synthetic_sink;
  CheckerPool synthetic_pool(parked_pool_options(&synthetic_sink));
  util::ManualClock clock;
  SyntheticMonitor sa("A", SyntheticMonitor::Kind::kMutex, clock,
                      small_config());
  SyntheticMonitor sb("B", SyntheticMonitor::Kind::kMutex, clock,
                      small_config());
  sa.lock_acquired(1);
  sb.lock_acquired(2);
  sb.lock_blocked(1);
  sa.lock_blocked(2);
  const CheckerPool::MonitorId sida = synthetic_pool.add(sa);
  const CheckerPool::MonitorId sidb = synthetic_pool.add(sb);
  synthetic_pool.check_now(sida);
  synthetic_pool.check_now(sidb);
  EXPECT_EQ(synthetic_pool.run_waitfor_checkpoint(), 1u);
  EXPECT_EQ(synthetic_pool.deadlocks_reported(), 1u);
  const std::string synthetic_message = wf_message(synthetic_sink);

  // Same monitors, same pids, same edges: the confirmed cycle must be
  // described identically — the shim is not a degraded approximation.
  ASSERT_FALSE(native_message.empty());
  EXPECT_EQ(native_message, synthetic_message);
  EXPECT_NE(synthetic_message.find("global deadlock cycle (2 links)"),
            std::string::npos)
      << synthetic_message;
  EXPECT_NE(synthetic_message.find("waits on A[entry]"), std::string::npos);
  EXPECT_NE(synthetic_message.find("waits on B[entry]"), std::string::npos);
  synthetic_pool.remove(sida);
  synthetic_pool.remove(sidb);
}

TEST(InterposeEquivalenceTest, CleanSyntheticScheduleConfirmsNothing) {
  core::CollectingSink sink;
  CheckerPool pool(parked_pool_options(&sink));
  util::ManualClock clock;
  SyntheticMonitor sa("A", SyntheticMonitor::Kind::kMutex, clock,
                      small_config());
  SyntheticMonitor sb("B", SyntheticMonitor::Kind::kMutex, clock,
                      small_config());
  // p1 holds A and wants B, but p2 releases B before the checkpoint: the
  // stale shape must confirm nothing (zero false positives).
  sa.lock_acquired(1);
  sb.lock_acquired(2);
  sb.lock_blocked(1);
  sb.unlocked(2);
  const CheckerPool::MonitorId ida = pool.add(sa);
  const CheckerPool::MonitorId idb = pool.add(sb);
  pool.check_now(ida);
  pool.check_now(idb);
  EXPECT_EQ(pool.run_waitfor_checkpoint(), 0u);
  EXPECT_EQ(pool.deadlocks_reported(), 0u);
  pool.remove(ida);
  pool.remove(idb);
}

// --- Re-entrancy guard. -------------------------------------------------------

TEST(ReentryGuardTest, DepthGatesAdaptation) {
  EXPECT_TRUE(ReentryGuard::should_adapt());
  EXPECT_EQ(ReentryGuard::depth(), 0);
  {
    ReentryGuard outer;
    EXPECT_FALSE(ReentryGuard::should_adapt());
    EXPECT_EQ(ReentryGuard::depth(), 1);
    {
      ReentryGuard inner;
      EXPECT_EQ(ReentryGuard::depth(), 2);
    }
    EXPECT_EQ(ReentryGuard::depth(), 1);
  }
  EXPECT_TRUE(ReentryGuard::should_adapt());
}

TEST(ReentryGuardTest, InternalMarkIsStickyAndPerThread) {
  std::thread worker([] {
    EXPECT_TRUE(ReentryGuard::should_adapt());
    ReentryGuard::mark_internal();
    EXPECT_TRUE(ReentryGuard::internal());
    EXPECT_FALSE(ReentryGuard::should_adapt());  // For the thread's life.
  });
  worker.join();
  // The mark never leaks to other threads.
  EXPECT_FALSE(ReentryGuard::internal());
  EXPECT_TRUE(ReentryGuard::should_adapt());
}

// --- Runtime: registry and fork retirement. -----------------------------------

TEST(InterposeRuntimeTest, RegistryDedupesByAddressAndFindsWithoutCreating) {
  Runtime& runtime = Runtime::instance();
  int object_a = 0, object_b = 0, unseen = 0;
  SyntheticMonitor* ma =
      runtime.monitor_for(&object_a, SyntheticMonitor::Kind::kMutex);
  ASSERT_NE(ma, nullptr);
  EXPECT_EQ(runtime.monitor_for(&object_a, SyntheticMonitor::Kind::kMutex),
            ma);
  SyntheticMonitor* mb =
      runtime.monitor_for(&object_b, SyntheticMonitor::Kind::kCondition);
  ASSERT_NE(mb, nullptr);
  EXPECT_NE(mb, ma);
  EXPECT_EQ(mb->kind(), SyntheticMonitor::Kind::kCondition);
  EXPECT_EQ(runtime.find_monitor(&object_a), ma);
  EXPECT_EQ(runtime.find_monitor(&unseen), nullptr);
  EXPECT_GE(runtime.monitor_count(), 2u);
}

TEST(InterposeRuntimeTest, ForkChildRetiresTheParentRuntime) {
  ASSERT_NE(&Runtime::instance(), nullptr);
  ASSERT_NE(Runtime::instance_if_built(), nullptr);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // The atfork child handler must have retired the parent's runtime —
    // its pool workers do not exist here.  _exit: no gtest teardown in
    // the child.
    _exit(Runtime::instance_if_built() == nullptr ? 0 : 1);
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  // The parent keeps its runtime.
  EXPECT_NE(Runtime::instance_if_built(), nullptr);
}

// --- ROBMON_* environment parsing (util::EnvFlags). ---------------------------

TEST(EnvFlagsTest, ParsesTypedValuesWithValidation) {
  ::setenv("RMTEST_SHARDS", "4", 1);
  ::setenv("RMTEST_BUDGET", "0.25", 1);
  ::setenv("RMTEST_LOCKORDER", "off", 1);
  util::EnvFlags env("RMTEST_");
  EXPECT_EQ(env.i64("SHARDS", 1, 1, 64), 4);
  EXPECT_DOUBLE_EQ(env.f64("BUDGET", 0.0, 0.0, 0.5), 0.25);
  EXPECT_FALSE(env.boolean("LOCKORDER", true));
  EXPECT_EQ(env.i64("UNSET", 7, 1, 64), 7);  // Fallback, not an error.
  EXPECT_TRUE(env.ok());
  ::unsetenv("RMTEST_SHARDS");
  ::unsetenv("RMTEST_BUDGET");
  ::unsetenv("RMTEST_LOCKORDER");
}

TEST(EnvFlagsTest, CollectsEveryErrorIntoOneReport) {
  ::setenv("RMTEST_SHARDS", "banana", 1);
  ::setenv("RMTEST_BUDGET", "0.9", 1);    // Above max.
  ::setenv("RMTEST_LOCKORDER", "maybe", 1);
  util::EnvFlags env("RMTEST_");
  // Every bad variable falls back to its default ...
  EXPECT_EQ(env.i64("SHARDS", 1, 1, 64), 1);
  EXPECT_DOUBLE_EQ(env.f64("BUDGET", 0.0, 0.0, 0.5), 0.0);
  EXPECT_TRUE(env.boolean("LOCKORDER", true));
  // ... and the single bad-config report names them all.
  EXPECT_FALSE(env.ok());
  EXPECT_EQ(env.errors().size(), 3u);
  const std::string report = env.error_text();
  EXPECT_NE(report.find("bad configuration"), std::string::npos);
  EXPECT_NE(report.find("RMTEST_SHARDS=banana"), std::string::npos);
  EXPECT_NE(report.find("RMTEST_BUDGET=0.9"), std::string::npos);
  EXPECT_NE(report.find("RMTEST_LOCKORDER=maybe"), std::string::npos);
  EXPECT_NE(report.find("recognized variables:"), std::string::npos);
  ::unsetenv("RMTEST_SHARDS");
  ::unsetenv("RMTEST_BUDGET");
  ::unsetenv("RMTEST_LOCKORDER");
}

}  // namespace
}  // namespace robmon
