// Property-style sweeps and unit tests for the supporting pieces:
// soundness across workload shapes, injection-framework semantics, codec
// round-trips under random traces, and spec/catalog consistency.
#include <gtest/gtest.h>

#include <sstream>

#include "core/monitor_spec.hpp"
#include "inject/catalog.hpp"
#include "inject/injection.hpp"
#include "trace/codec.hpp"
#include "util/rng.hpp"
#include "workloads/sim_scenarios.hpp"

namespace robmon {
namespace {

// --- Soundness across workload shapes (simulator). ---------------------------

struct SweepShape {
  int producers;
  int consumers;
  std::size_t capacity;
  int operations;
  const char* label;
};

using SweepParam = std::tuple<SweepShape, std::uint64_t>;

class ShapeSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ShapeSweepTest, FaultFreeAcrossShapes) {
  const auto [shape, seed] = GetParam();
  wl::CoverageConfig config;
  config.producers = shape.producers;
  config.consumers = shape.consumers;
  config.buffer_capacity = shape.capacity;
  config.operations = shape.operations;
  EXPECT_EQ(wl::run_fault_free_trial(
                core::MonitorType::kCommunicationCoordinator, seed, config),
            0u)
      << shape.label << " seed " << seed;
}

std::vector<SweepParam> sweep_params() {
  static const SweepShape shapes[] = {
      {1, 1, 1, 20, "minimal"},
      {1, 4, 2, 16, "consumer-heavy"},
      {4, 1, 2, 16, "producer-heavy"},
      {2, 2, 1, 24, "single-slot"},
      {5, 5, 4, 10, "wide"},
  };
  std::vector<SweepParam> params;
  for (const auto& shape : shapes) {
    for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
      params.emplace_back(shape, seed);
    }
  }
  return params;
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto [shape, seed] = info.param;
  std::string label = shape.label;
  for (char& c : label) {
    if (c == '-') c = '_';
  }
  return label + "_seed" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeSweepTest,
                         ::testing::ValuesIn(sweep_params()), sweep_name);

// --- Injection framework semantics. -------------------------------------------

TEST(ScriptedInjectionTest, FiresOnNthOpportunity) {
  inject::ScriptedInjection injection(
      {core::FaultKind::kWaitNoBlock, trace::kNoPid, 3, false});
  EXPECT_FALSE(injection.fire(core::FaultKind::kWaitNoBlock, 1));
  EXPECT_FALSE(injection.fire(core::FaultKind::kWaitNoBlock, 2));
  EXPECT_TRUE(injection.fire(core::FaultKind::kWaitNoBlock, 3));
  EXPECT_TRUE(injection.fired());
  EXPECT_EQ(injection.victim(), 3);
  // One-shot: no further strikes.
  EXPECT_FALSE(injection.fire(core::FaultKind::kWaitNoBlock, 4));
}

TEST(ScriptedInjectionTest, OtherKindsDoNotConsumeOpportunities) {
  inject::ScriptedInjection injection(
      {core::FaultKind::kWaitNoBlock, trace::kNoPid, 1, false});
  EXPECT_FALSE(injection.fire(core::FaultKind::kEnterRequestLost, 1));
  EXPECT_FALSE(injection.fired());
  EXPECT_TRUE(injection.fire(core::FaultKind::kWaitNoBlock, 1));
}

TEST(ScriptedInjectionTest, TargetFilter) {
  inject::ScriptedInjection injection(
      {core::FaultKind::kWaitNoBlock, /*target=*/7, 1, false});
  EXPECT_FALSE(injection.fire(core::FaultKind::kWaitNoBlock, 1));
  EXPECT_FALSE(injection.fire(core::FaultKind::kWaitNoBlock, 9));
  EXPECT_TRUE(injection.fire(core::FaultKind::kWaitNoBlock, 7));
}

TEST(ScriptedInjectionTest, StickyKeepsStrikingVictim) {
  inject::ScriptedInjection injection(
      {core::FaultKind::kWaitEntryStarved, trace::kNoPid, 1, true});
  EXPECT_TRUE(injection.fire(core::FaultKind::kWaitEntryStarved, 5));
  EXPECT_TRUE(injection.fire(core::FaultKind::kWaitEntryStarved, 5));
  EXPECT_FALSE(injection.fire(core::FaultKind::kWaitEntryStarved, 6));
  EXPECT_TRUE(injection.active(core::FaultKind::kWaitEntryStarved, 5));
  EXPECT_FALSE(injection.active(core::FaultKind::kWaitEntryStarved, 6));
  EXPECT_FALSE(injection.active(core::FaultKind::kWaitNoBlock, 5));
}

TEST(ScriptedInjectionTest, NonStickyActiveStillIdentifiesVictim) {
  inject::ScriptedInjection injection(
      {core::FaultKind::kEnterNoResponse, trace::kNoPid, 1, false});
  EXPECT_FALSE(injection.active(core::FaultKind::kEnterNoResponse, 5));
  EXPECT_TRUE(injection.fire(core::FaultKind::kEnterNoResponse, 5));
  EXPECT_TRUE(injection.active(core::FaultKind::kEnterNoResponse, 5));
}

TEST(RandomInjectionTest, ProbabilityZeroNeverFires) {
  inject::RandomInjection injection(core::FaultKind::kWaitNoBlock, 0.0, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injection.fire(core::FaultKind::kWaitNoBlock, i));
  }
  EXPECT_EQ(injection.times_fired(), 0);
}

TEST(RandomInjectionTest, ProbabilityOneAlwaysFires) {
  inject::RandomInjection injection(core::FaultKind::kWaitNoBlock, 1.0, 1);
  EXPECT_TRUE(injection.fire(core::FaultKind::kWaitNoBlock, 3));
  EXPECT_GE(injection.times_fired(), 1);
  EXPECT_EQ(injection.victim(), 3);
}

TEST(RandomInjectionTest, StickyFaultEngagesOnVictim) {
  inject::RandomInjection injection(core::FaultKind::kWaitEntryStarved, 1.0,
                                    1);
  EXPECT_TRUE(injection.fire(core::FaultKind::kWaitEntryStarved, 4));
  // Once engaged, only the victim keeps being struck.
  EXPECT_TRUE(injection.fire(core::FaultKind::kWaitEntryStarved, 4));
  EXPECT_FALSE(injection.fire(core::FaultKind::kWaitEntryStarved, 5));
}

TEST(InjectionMetaTest, StickyAndTimerFlagsConsistentWithCatalog) {
  for (const auto& entry : inject::fault_catalog()) {
    EXPECT_EQ(entry.timer_based, inject::needs_timer(entry.kind))
        << core::to_string(entry.kind);
  }
  EXPECT_TRUE(inject::is_sticky_fault(core::FaultKind::kWaitEntryStarved));
  EXPECT_TRUE(inject::is_sticky_fault(core::FaultKind::kEnterNoResponse));
  EXPECT_FALSE(inject::is_sticky_fault(core::FaultKind::kWaitNoBlock));
}

// --- MonitorSpec. --------------------------------------------------------------

TEST(MonitorSpecTest, FactoriesSetTypeAndCapacity) {
  const auto coordinator = core::MonitorSpec::coordinator("c", 16);
  EXPECT_EQ(coordinator.type,
            core::MonitorType::kCommunicationCoordinator);
  EXPECT_EQ(coordinator.rmax, 16);
  EXPECT_EQ(core::MonitorSpec::allocator("a").type,
            core::MonitorType::kResourceAllocator);
  EXPECT_EQ(core::MonitorSpec::manager("m").type,
            core::MonitorType::kOperationManager);
}

TEST(MonitorSpecTest, AllocatorDefaultsToAcquireReleaseOrder) {
  const auto spec = core::MonitorSpec::allocator("a");
  EXPECT_EQ(spec.effective_path_expression(), "(Acquire ; Release)*");
}

TEST(MonitorSpecTest, ExplicitPathExpressionWins) {
  auto spec = core::MonitorSpec::allocator("a");
  spec.path_expression = "(Open ; Use* ; Close)*";
  EXPECT_EQ(spec.effective_path_expression(), "(Open ; Use* ; Close)*");
}

TEST(MonitorSpecTest, NonAllocatorHasNoDefaultOrder) {
  EXPECT_TRUE(core::MonitorSpec::manager("m")
                  .effective_path_expression()
                  .empty());
}

TEST(MonitorSpecTest, TypeStringRoundTrip) {
  for (const auto type : {core::MonitorType::kCommunicationCoordinator,
                          core::MonitorType::kResourceAllocator,
                          core::MonitorType::kOperationManager}) {
    EXPECT_EQ(core::monitor_type_from_string(core::to_string(type)), type);
  }
  EXPECT_THROW(core::monitor_type_from_string("nonsense"),
               std::invalid_argument);
}

// --- Report rendering. -----------------------------------------------------------

TEST(ReportDescribeTest, IncludesLevelRulePidAndSuspect) {
  trace::SymbolTable symbols;
  const auto send = symbols.intern("Send");
  core::FaultReport report;
  report.rule = core::RuleId::kSt7aSendExceedsCapacity;
  report.suspected = core::FaultKind::kSendExceedsCapacity;
  report.pid = 3;
  report.proc = send;
  report.message = "boom";
  const std::string text = core::describe(report, symbols);
  EXPECT_NE(text.find("monitor-procedure"), std::string::npos);
  EXPECT_NE(text.find("ST-7a"), std::string::npos);
  EXPECT_NE(text.find("p3"), std::string::npos);
  EXPECT_NE(text.find("Send"), std::string::npos);
  EXPECT_NE(text.find("II.d"), std::string::npos);
  EXPECT_NE(text.find("boom"), std::string::npos);
}

// --- Codec round-trip under random traces. ----------------------------------------

trace::TraceFile random_trace(util::Rng& rng) {
  trace::TraceFile file;
  file.monitor_name = "m" + std::to_string(rng.below(100));
  file.monitor_type = "coordinator";
  file.rmax = rng.range(0, 64);
  const auto symbol_count = 2 + rng.below(6);
  for (std::uint64_t s = 0; s < symbol_count; ++s) {
    file.symbols.push_back("sym" + std::to_string(s));
  }
  const auto event_count = rng.below(200);
  for (std::uint64_t i = 0; i < event_count; ++i) {
    trace::EventRecord ev;
    ev.seq = i;
    ev.time = static_cast<util::TimeNs>(rng.below(1'000'000));
    ev.kind = static_cast<trace::EventKind>(rng.below(3));
    ev.pid = static_cast<trace::Pid>(rng.below(32));
    ev.proc = static_cast<trace::SymbolId>(rng.below(symbol_count));
    ev.cond = rng.chance(0.5)
                  ? trace::kNoSymbol
                  : static_cast<trace::SymbolId>(rng.below(symbol_count));
    ev.flag = rng.chance(0.5);
    file.events.push_back(ev);
  }
  const auto checkpoint_count = 1 + rng.below(4);
  for (std::uint64_t c = 0; c < checkpoint_count; ++c) {
    trace::SchedulingState state;
    state.captured_at = static_cast<util::TimeNs>(rng.below(1'000'000));
    state.resources = rng.range(-1, 32);
    if (rng.chance(0.6)) {
      state.running = static_cast<trace::Pid>(rng.below(32));
      state.running_proc = static_cast<trace::SymbolId>(
          rng.below(symbol_count));
      state.running_since = static_cast<util::TimeNs>(rng.below(1'000'000));
    }
    const auto eq = rng.below(5);
    for (std::uint64_t i = 0; i < eq; ++i) {
      state.entry_queue.push_back(
          {static_cast<trace::Pid>(rng.below(32)),
           static_cast<trace::SymbolId>(rng.below(symbol_count)),
           static_cast<util::TimeNs>(rng.below(1'000'000))});
    }
    if (rng.chance(0.7)) {
      trace::CondQueueState queue;
      queue.cond = static_cast<trace::SymbolId>(rng.below(symbol_count));
      const auto cq = rng.below(4);
      for (std::uint64_t i = 0; i < cq; ++i) {
        queue.entries.push_back(
            {static_cast<trace::Pid>(rng.below(32)),
             static_cast<trace::SymbolId>(rng.below(symbol_count)),
             static_cast<util::TimeNs>(rng.below(1'000'000))});
      }
      state.cond_queues.push_back(queue);
    }
    file.checkpoints.push_back(state);
  }
  return file;
}

class CodecRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecRoundTripTest, RandomTraceSurvivesRoundTrip) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 5; ++i) {
    const trace::TraceFile original = random_trace(rng);
    const trace::TraceFile parsed =
        trace::read_trace_string(trace::write_trace_string(original));
    EXPECT_EQ(parsed.monitor_name, original.monitor_name);
    EXPECT_EQ(parsed.rmax, original.rmax);
    EXPECT_EQ(parsed.symbols, original.symbols);
    ASSERT_EQ(parsed.events.size(), original.events.size());
    for (std::size_t e = 0; e < parsed.events.size(); ++e) {
      EXPECT_EQ(parsed.events[e], original.events[e]);
    }
    ASSERT_EQ(parsed.checkpoints.size(), original.checkpoints.size());
    for (std::size_t c = 0; c < parsed.checkpoints.size(); ++c) {
      // Condition queues that were randomly generated empty are recorded
      // as declared-empty and survive; compare structurally.
      EXPECT_EQ(parsed.checkpoints[c].entry_queue,
                original.checkpoints[c].entry_queue);
      EXPECT_EQ(parsed.checkpoints[c].resources,
                original.checkpoints[c].resources);
      EXPECT_EQ(parsed.checkpoints[c].running,
                original.checkpoints[c].running);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTripTest,
                         ::testing::Values(101, 102, 103, 104));

}  // namespace
}  // namespace robmon
