// Recovery engine tests: victim policy units, the sync::Gate fence,
// survivable poison / fault-delivery semantics on the monitor (including
// churn around poison under a frozen ManualClock), pool-level actuation
// from both checkpoints, and the workload liveness contracts (a
// deterministically deadlocking ring must complete under every remedy,
// with exactly one action per cycle and zero actions on clean controls).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/recovery.hpp"
#include "runtime/checker_pool.hpp"
#include "runtime/robust_monitor.hpp"
#include "sync/gate.hpp"
#include "util/clock.hpp"
#include "workloads/allocator.hpp"
#include "workloads/dining.hpp"
#include "workloads/gate_crossing.hpp"

namespace robmon {
namespace {

using core::RuleId;
using rt::CheckerPool;
using rt::HoareMonitor;
using rt::RobustMonitor;
using util::kMillisecond;
using util::kSecond;

core::MonitorSpec fork_spec(const std::string& name) {
  core::MonitorSpec spec = core::MonitorSpec::allocator(name);
  spec.t_limit = 30 * kSecond;  // timers stay out of the way
  spec.t_max = 30 * kSecond;
  spec.t_io = 30 * kSecond;
  spec.check_period = 2 * kMillisecond;
  return spec;
}

// --- sync::Gate units. -------------------------------------------------------

TEST(GateTest, DisengagedIsANoOp) {
  sync::Gate gate;
  EXPECT_FALSE(gate.engaged());
  std::vector<std::string> names = {"b", "a"};
  gate.apply_order(names);
  EXPECT_EQ(names, (std::vector<std::string>{"b", "a"}));
  {
    sync::Gate::Scope scope(gate, 1);
    sync::Gate::Scope nested(gate, 2);  // shared side: no exclusion
  }
  EXPECT_EQ(gate.fenced_crossings(), 0u);
  EXPECT_EQ(gate.impositions(), 0u);
}

TEST(GateTest, ApplyOrderSortsOntoImposedOrder) {
  sync::Gate gate;
  gate.impose({"a", "b", "c"}, {7});
  EXPECT_TRUE(gate.engaged());
  EXPECT_TRUE(gate.is_fenced(7));
  EXPECT_FALSE(gate.is_fenced(8));
  std::vector<std::string> names = {"c", "x", "a", "y"};
  gate.apply_order(names);
  // Ranked names sort onto the imposed order; unranked keep their relative
  // position after every ranked one.
  EXPECT_EQ(names, (std::vector<std::string>{"a", "c", "x", "y"}));
}

TEST(GateTest, ImposeMergesOrdersAndFencedSets) {
  sync::Gate gate;
  gate.impose({"a", "b"}, {1});
  gate.impose({"c", "a", "d"}, {2});  // "a" keeps rank 0; c/d append
  EXPECT_EQ(gate.imposed_order(),
            (std::vector<std::string>{"a", "b", "c", "d"}));
  EXPECT_TRUE(gate.is_fenced(1));
  EXPECT_TRUE(gate.is_fenced(2));
  EXPECT_EQ(gate.impositions(), 2u);
}

TEST(GateTest, FencedCrossingRunsExclusively) {
  sync::Gate gate;
  gate.impose({"a", "b"}, {9});
  std::atomic<int> inside{0};
  std::atomic<bool> overlap{false};
  std::atomic<bool> fenced_ran{false};
  const auto crossing = [&](trace::Pid pid) {
    sync::Gate::Scope scope(gate, pid);
    if (pid == 9) fenced_ran = true;
    if (inside.fetch_add(1) > 0 && pid == 9) overlap = true;
    if (pid != 9 && fenced_ran.load()) {
      // a shared crossing observed while the fenced one ran would mean the
      // exclusion failed -- checked via the counter below instead (the
      // fenced crossing may simply have finished already).
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    inside.fetch_sub(1);
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back(crossing, i == 0 ? 9 : i + 10);
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(overlap.load()) << "fenced crossing overlapped another";
  EXPECT_EQ(gate.fenced_crossings(), 1u);
}

// --- RecoveryPolicy units. ---------------------------------------------------

core::DeadlockCycle two_link_cycle() {
  core::DeadlockCycle cycle;
  core::DeadlockCycle::Link a;
  a.pid = 1;
  a.monitor = 10;
  a.monitor_name = "f0";
  a.cond = "available";
  a.blocked_since = 100;
  a.blocked_ticket = 5;
  a.holder = 2;
  core::DeadlockCycle::Link b;
  b.pid = 2;
  b.monitor = 11;
  b.monitor_name = "f1";
  b.cond = "available";
  b.blocked_since = 200;
  b.blocked_ticket = 9;
  b.holder = 1;
  cycle.links = {a, b};
  return cycle;
}

TEST(VictimPolicyTest, DefaultComparatorPrefersYoungestEpisode) {
  core::RecoveryPolicy policy;
  const core::RecoveryDecision decision = policy.decide(two_link_cycle());
  EXPECT_EQ(decision.victim.pid, 2);  // ticket 9 > ticket 5: youngest
  EXPECT_EQ(decision.victim.monitor_name, "f1");
  EXPECT_EQ(decision.remedy, core::RecoveryRemedy::kPoisonVictim);
  EXPECT_NE(decision.rationale.find("victim p2"), std::string::npos)
      << decision.rationale;
}

TEST(VictimPolicyTest, TicketTiesFallToHeldMonitorsThenPriority) {
  core::DeadlockCycle cycle = two_link_cycle();
  cycle.links[0].blocked_ticket = 7;
  cycle.links[0].blocked_since = 300;
  cycle.links[1].blocked_ticket = 7;
  cycle.links[1].blocked_since = 300;
  // p1 holds two cycle monitors, p2 holds one: p2 loses less work.
  cycle.links.push_back(cycle.links[0]);
  cycle.links[2].pid = 3;
  cycle.links[2].blocked_ticket = 7;
  cycle.links[2].blocked_since = 300;
  cycle.links[2].holder = 1;
  core::RecoveryPolicy policy;
  const auto candidates = policy.candidates(cycle);
  ASSERT_EQ(candidates.size(), 3u);
  const core::RecoveryDecision decision = policy.decide(cycle);
  EXPECT_NE(decision.victim.pid, 1);  // p1 holds 2 monitors, never chosen
}

TEST(VictimPolicyTest, PriorityHookProtectsImportantThreads) {
  core::RecoveryPolicy::Options options;
  options.confirmed_remedy = core::RecoveryRemedy::kDeliverFault;
  // Score by priority alone: p2 is important, p1 expendable.
  options.comparator = [](const core::VictimCandidate& a,
                          const core::VictimCandidate& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.pid < b.pid;
  };
  options.priority = [](trace::Pid pid) { return pid == 2 ? 10 : 0; };
  core::RecoveryPolicy policy(options);
  const core::RecoveryDecision decision = policy.decide(two_link_cycle());
  EXPECT_EQ(decision.victim.pid, 1);
  EXPECT_EQ(decision.remedy, core::RecoveryRemedy::kDeliverFault);
}

TEST(OrderPolicyTest, MinorityEdgeFencedAndOrderLinearized) {
  core::OrderCycle cycle;
  core::OrderCycle::Step s0;
  s0.monitor = 1;
  s0.name = "a";
  s0.witness = {3, 1, 2, true};
  core::OrderCycle::Step s1;
  s1.monitor = 2;
  s1.name = "b";
  s1.witness = {4, 3, 4, true};
  cycle.steps = {s0, s1};

  std::vector<core::OrderEdge> edges(2);
  edges[0].from = 1;
  edges[0].to = 2;
  edges[0].from_name = "a";
  edges[0].to_name = "b";
  edges[0].witnesses = {{3, 1, 2, true}};
  edges[0].witness_total = 5;  // dominant direction
  edges[1].from = 2;
  edges[1].to = 1;
  edges[1].from_name = "b";
  edges[1].to_name = "a";
  edges[1].witnesses = {{4, 3, 4, true}, {6, 7, 8, true}};
  edges[1].witness_total = 2;  // minority direction

  core::RecoveryPolicy policy;
  const core::OrderDecision decision = policy.decide(cycle, edges);
  EXPECT_EQ(decision.minority_from, "b");
  EXPECT_EQ(decision.minority_to, "a");
  EXPECT_EQ(decision.fenced, (std::vector<trace::Pid>{4, 6}));
  // Linearized past the minority edge: the dominant a -> b points forward.
  EXPECT_EQ(decision.imposed_order, (std::vector<std::string>{"a", "b"}));
  EXPECT_NE(decision.rationale.find("imposed order a b"), std::string::npos)
      << decision.rationale;
}

// --- Survivable poison / fault delivery on the monitor. ----------------------

TEST(RecoveryPoisonTest, ParkedAndArrivingWaitersObserveRecoveryFault) {
  util::ManualClock clock(1000);  // frozen: semantics are clock-independent
  HoareMonitor monitor(fork_spec("m"), clock);

  ASSERT_EQ(monitor.enter(1, "Acquire"), rt::Status::kOk);  // owner inside
  std::atomic<int> status2{-1};
  std::thread parked([&] {
    status2 = static_cast<int>(monitor.enter(2, "Acquire"));
  });
  for (int spin = 0; spin < 4000 && monitor.snapshot().blocked_count() < 1;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(250));
  }
  ASSERT_EQ(monitor.snapshot().blocked_count(), 1u);

  monitor.recovery_poison();
  parked.join();
  EXPECT_EQ(status2.load(), static_cast<int>(rt::Status::kRecoveryFault));

  // Arrivals after the poison observe the sticky state without parking.
  EXPECT_EQ(monitor.enter(3, "Acquire"), rt::Status::kRecoveryFault);
  EXPECT_TRUE(monitor.recovery_poisoned());

  // Unpoison restores normal service; the original owner still works.
  monitor.unpoison();
  EXPECT_FALSE(monitor.recovery_poisoned());
  monitor.exit(1);
  EXPECT_EQ(monitor.enter(3, "Acquire"), rt::Status::kOk);
  monitor.exit(3);
}

TEST(RecoveryPoisonTest, ConditionWaiterWakesAndOwnershipIsReleased) {
  util::ManualClock clock(1000);
  HoareMonitor monitor(fork_spec("m"), clock);

  std::atomic<int> status{-1};
  std::thread waiter([&] {
    ASSERT_EQ(monitor.enter(1, "Acquire"), rt::Status::kOk);
    status = static_cast<int>(monitor.wait(1, "available"));
  });
  for (int spin = 0; spin < 4000 && monitor.snapshot().blocked_count() < 1;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(250));
  }
  monitor.recovery_poison();
  waiter.join();
  EXPECT_EQ(status.load(), static_cast<int>(rt::Status::kRecoveryFault));
  monitor.unpoison();
  // The monitor is free again (the wait released ownership on park).
  EXPECT_EQ(monitor.enter(2, "Acquire"), rt::Status::kOk);
  monitor.exit(2);
}

TEST(RecoveryPoisonTest, NonBlockingTrafficFlowsWhilePoisoned) {
  // The poison rejects exactly the calls that would park; an enter of a
  // FREE monitor (the shape of a Release returning a unit) must proceed,
  // or the poisoned monitor could never drain back to service.
  util::ManualClock clock(1000);
  HoareMonitor monitor(fork_spec("m"), clock);
  monitor.recovery_poison();
  EXPECT_EQ(monitor.enter(1, "Release"), rt::Status::kOk);
  monitor.exit(1);
  // A call that would block is still rejected.
  ASSERT_EQ(monitor.enter(2, "Acquire"), rt::Status::kOk);
  EXPECT_EQ(monitor.enter(3, "Acquire"), rt::Status::kRecoveryFault);
  EXPECT_EQ(monitor.wait(2, "available"), rt::Status::kRecoveryFault);
  monitor.unpoison();
}

TEST(RecoveryPoisonTest, WaitUnderStickyPoisonReleasesOwnership) {
  util::ManualClock clock(1000);
  HoareMonitor monitor(fork_spec("m"), clock);
  ASSERT_EQ(monitor.enter(1, "Acquire"), rt::Status::kOk);
  monitor.recovery_poison();
  // The owner's wait is rejected -- and must hand the monitor back.
  EXPECT_EQ(monitor.wait(1, "available"), rt::Status::kRecoveryFault);
  monitor.unpoison();
  EXPECT_EQ(monitor.enter(2, "Acquire"), rt::Status::kOk);
  monitor.exit(2);
}

TEST(RecoveryPoisonTest, DeliverFaultWakesOnlyTheVictim) {
  util::ManualClock clock(1000);
  HoareMonitor monitor(fork_spec("m"), clock);

  ASSERT_EQ(monitor.enter(1, "Acquire"), rt::Status::kOk);  // owner
  std::atomic<int> status2{-1};
  std::atomic<int> status3{-1};
  std::thread victim([&] {
    status2 = static_cast<int>(monitor.enter(2, "Acquire"));
  });
  std::thread bystander([&] {
    status3 = static_cast<int>(monitor.enter(3, "Acquire"));
  });
  for (int spin = 0; spin < 4000 && monitor.snapshot().blocked_count() < 2;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(250));
  }

  EXPECT_FALSE(monitor.deliver_recovery_fault(99));  // unknown pid: no-op
  EXPECT_TRUE(monitor.deliver_recovery_fault(2));
  victim.join();
  EXPECT_EQ(status2.load(), static_cast<int>(rt::Status::kRecoveryFault));
  EXPECT_EQ(status3.load(), -1);  // bystander still parked
  EXPECT_FALSE(monitor.recovery_poisoned());  // delivery does not poison

  monitor.exit(1);  // hand off to the bystander
  bystander.join();
  EXPECT_EQ(status3.load(), static_cast<int>(rt::Status::kOk));
  monitor.exit(3);
}

TEST(RecoveryPoisonTest, ChurnAroundPoisonStaysConsistent) {
  // Waiters parked before each poison and arrivals after it must both
  // observe kRecoveryFault; after the final unpoison every thread must be
  // able to complete normally.  ManualClock keeps timestamps frozen, so
  // nothing here depends on timing; TSan referees the handoffs.
  util::ManualClock clock(1000);
  HoareMonitor monitor(fork_spec("m"), clock);
  constexpr int kThreads = 8;
  std::atomic<bool> stop{false};
  std::atomic<int> ok_after_restore{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      const trace::Pid pid = i + 1;
      while (!stop.load(std::memory_order_acquire)) {
        const rt::Status status = monitor.enter(pid, "Acquire");
        ASSERT_NE(status, rt::Status::kPoisoned);
        if (status == rt::Status::kOk) monitor.exit(pid);
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      // Post-restore: normal service must be reachable for everyone.
      for (;;) {
        const rt::Status status = monitor.enter(pid, "Acquire");
        if (status == rt::Status::kOk) {
          monitor.exit(pid);
          ok_after_restore.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }
  for (int cycle = 0; cycle < 20; ++cycle) {
    monitor.recovery_poison();
    clock.advance(kMillisecond);
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    monitor.unpoison();
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  monitor.unpoison();
  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok_after_restore.load(), kThreads);
  EXPECT_FALSE(monitor.recovery_poisoned());
}

// --- Pool-level actuation. ---------------------------------------------------

struct RecoveryFixture {
  core::CollectingSink sink;
  core::RecoveryPolicy policy;
  sync::Gate gate;
  CheckerPool pool;
  RobustMonitor m0, m1;
  wl::ResourceAllocator f0, f1;

  explicit RecoveryFixture(core::RecoveryRemedy remedy)
      : policy([&] {
          core::RecoveryPolicy::Options options;
          options.confirmed_remedy = remedy;
          return options;
        }()),
        pool([&] {
          CheckerPool::Options options;
          options.waitfor_checkpoint_period = kMillisecond;
          options.waitfor_sink = &sink;
          options.lockorder_checkpoint_period = kMillisecond;
          options.lockorder_sink = &sink;
          options.recovery.policy = &policy;
          options.recovery.gate = &gate;
          return options;
        }()),
        m0(fork_spec("f0"), sink, with_pool()),
        m1(fork_spec("f1"), sink, with_pool()),
        f0(m0, 1),
        f1(m1, 1) {}

  RobustMonitor::Options with_pool() {
    RobustMonitor::Options options;
    options.checker_pool = &pool;
    return options;
  }

  void wait_blocked(const RobustMonitor& monitor, std::size_t count) {
    for (int spin = 0; spin < 4000; ++spin) {
      if (monitor.snapshot().blocked_count() >= count) return;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    FAIL() << "thread never blocked";
  }

  std::size_t reports_with(RuleId rule) const {
    std::size_t n = 0;
    for (const auto& report : sink.reports()) {
      if (report.rule == rule) ++n;
    }
    return n;
  }
};

TEST(PoolRecoveryTest, PoisonVictimBreaksTwoMonitorDeadlock) {
  RecoveryFixture fx(core::RecoveryRemedy::kPoisonVictim);

  ASSERT_EQ(fx.f0.acquire(1), rt::Status::kOk);
  ASSERT_EQ(fx.f1.acquire(2), rt::Status::kOk);
  std::atomic<int> recovery_faults{0};
  std::thread t1([&] {
    if (fx.f1.acquire(1) == rt::Status::kRecoveryFault) ++recovery_faults;
  });
  std::thread t2([&] {
    if (fx.f0.acquire(2) == rt::Status::kRecoveryFault) ++recovery_faults;
  });
  fx.wait_blocked(fx.m0, 1);
  fx.wait_blocked(fx.m1, 1);

  fx.m0.check_now();
  fx.m1.check_now();
  EXPECT_EQ(fx.pool.run_waitfor_checkpoint(), 1u);

  // Exactly one action: the victim monitor was poisoned, its one waiter
  // evicted with kRecoveryFault; the deadlock is broken.
  EXPECT_EQ(fx.pool.recovery_actions(), 1u);
  EXPECT_EQ(fx.pool.victims_poisoned(), 1u);
  EXPECT_EQ(fx.reports_with(RuleId::kRecoveryAction), 1u);
  const bool m0_poisoned = fx.m0.recovery_poisoned();
  const bool m1_poisoned = fx.m1.recovery_poisoned();
  EXPECT_TRUE(m0_poisoned != m1_poisoned) << "exactly one victim monitor";
  // The evicted thread returns; the other stays parked behind a live hold.
  for (int spin = 0; spin < 4000 && recovery_faults.load() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  EXPECT_EQ(recovery_faults.load(), 1);

  // The next checkpoint sees the cycle dissolved and completes the
  // recovery: the sticky poison is cleared.
  fx.m0.check_now();
  fx.m1.check_now();
  EXPECT_EQ(fx.pool.run_waitfor_checkpoint(), 0u);
  EXPECT_EQ(fx.pool.monitors_unpoisoned(), 1u);
  EXPECT_FALSE(fx.m0.recovery_poisoned());
  EXPECT_FALSE(fx.m1.recovery_poisoned());

  // A second pass does not act again, and the detectors stay quiet: no
  // ST-Rule false positives from the out-of-band eviction.
  fx.m0.check_now();
  fx.m1.check_now();
  fx.pool.run_waitfor_checkpoint();
  EXPECT_EQ(fx.pool.recovery_actions(), 1u);
  for (const auto& report : fx.sink.reports()) {
    EXPECT_TRUE(report.rule == RuleId::kWfCycleDetected ||
                report.rule == RuleId::kRecoveryAction)
        << core::to_string(report.rule);
  }

  fx.m0.poison();
  fx.m1.poison();
  t1.join();
  t2.join();
}

TEST(PoolRecoveryTest, DeliverFaultWakesVictimWithoutPoisoning) {
  RecoveryFixture fx(core::RecoveryRemedy::kDeliverFault);

  ASSERT_EQ(fx.f0.acquire(1), rt::Status::kOk);
  ASSERT_EQ(fx.f1.acquire(2), rt::Status::kOk);
  std::atomic<int> recovery_faults{0};
  std::thread t1([&] {
    if (fx.f1.acquire(1) == rt::Status::kRecoveryFault) ++recovery_faults;
  });
  std::thread t2([&] {
    if (fx.f0.acquire(2) == rt::Status::kRecoveryFault) ++recovery_faults;
  });
  fx.wait_blocked(fx.m0, 1);
  fx.wait_blocked(fx.m1, 1);

  fx.m0.check_now();
  fx.m1.check_now();
  EXPECT_EQ(fx.pool.run_waitfor_checkpoint(), 1u);
  EXPECT_EQ(fx.pool.recovery_actions(), 1u);
  EXPECT_EQ(fx.pool.recovery_faults_delivered(), 1u);
  EXPECT_EQ(fx.pool.victims_poisoned(), 0u);
  EXPECT_FALSE(fx.m0.recovery_poisoned());
  EXPECT_FALSE(fx.m1.recovery_poisoned());
  for (int spin = 0; spin < 4000 && recovery_faults.load() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  EXPECT_EQ(recovery_faults.load(), 1);

  fx.m0.poison();
  fx.m1.poison();
  t1.join();
  t2.join();
}

TEST(PoolRecoveryTest, PredictedCycleImposesOrderOnGate) {
  RecoveryFixture fx(core::RecoveryRemedy::kPoisonVictim);

  // Thread p1 crosses f0 -> f1, p2 crosses f1 -> f0; never concurrently,
  // so no real cycle -- only the order relation records the conflict.
  ASSERT_EQ(fx.f0.acquire(1), rt::Status::kOk);
  ASSERT_EQ(fx.f1.acquire(1), rt::Status::kOk);
  fx.m0.check_now();
  fx.m1.check_now();
  ASSERT_EQ(fx.f1.release(1), rt::Status::kOk);
  ASSERT_EQ(fx.f0.release(1), rt::Status::kOk);
  ASSERT_EQ(fx.f1.acquire(2), rt::Status::kOk);
  ASSERT_EQ(fx.f0.acquire(2), rt::Status::kOk);
  fx.m0.check_now();
  fx.m1.check_now();
  ASSERT_EQ(fx.f0.release(2), rt::Status::kOk);
  ASSERT_EQ(fx.f1.release(2), rt::Status::kOk);

  EXPECT_GE(fx.pool.run_lockorder_checkpoint(), 1u);
  EXPECT_EQ(fx.pool.orders_imposed(), 1u);
  EXPECT_EQ(fx.pool.recovery_actions(), 1u);
  EXPECT_TRUE(fx.gate.engaged());
  EXPECT_EQ(fx.gate.imposed_order().size(), 2u);
  EXPECT_EQ(fx.reports_with(RuleId::kRecoveryAction), 1u);
  EXPECT_EQ(fx.reports_with(RuleId::kWfCycleDetected), 0u);

  // Re-running the pass does not impose again (cycle already reported).
  fx.pool.run_lockorder_checkpoint();
  EXPECT_EQ(fx.pool.orders_imposed(), 1u);
}

TEST(PoolRecoveryTest, RecoveryLogRecordsActionsAndCompletions) {
  RecoveryFixture fx(core::RecoveryRemedy::kPoisonVictim);

  ASSERT_EQ(fx.f0.acquire(1), rt::Status::kOk);
  ASSERT_EQ(fx.f1.acquire(2), rt::Status::kOk);
  std::thread t1([&] { (void)fx.f1.acquire(1); });
  std::thread t2([&] { (void)fx.f0.acquire(2); });
  fx.wait_blocked(fx.m0, 1);
  fx.wait_blocked(fx.m1, 1);
  fx.m0.check_now();
  fx.m1.check_now();
  fx.pool.run_waitfor_checkpoint();
  fx.m0.check_now();
  fx.m1.check_now();
  fx.pool.run_waitfor_checkpoint();  // completes the poison

  const std::vector<trace::RecoveryRecord> log = fx.pool.recovery_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].action, 'P');
  EXPECT_NE(log[0].victim, trace::kNoPid);
  EXPECT_FALSE(log[0].monitor.empty());
  EXPECT_NE(log[0].detail.find("victim"), std::string::npos);
  EXPECT_EQ(log[1].action, 'C');
  EXPECT_EQ(log[1].monitor, log[0].monitor);

  fx.m0.poison();
  fx.m1.poison();
  t1.join();
  t2.join();
}

// --- Workload liveness contracts. --------------------------------------------

// No report outside {WF verdicts, LO warnings, RC actions} may appear: a
// recovery intervention that surfaces as a per-monitor ST or call-order
// violation is a recovery-induced false positive (the bug class the
// detection-suspension + re-baseline + matcher-reset plumbing exists to
// prevent).
void expect_no_unexpected_reports(const wl::DiningLoadResult& result) {
  for (const auto& report : result.reports) {
    EXPECT_TRUE(report.rule == RuleId::kWfCycleDetected ||
                report.rule == RuleId::kLockOrderCycle ||
                report.rule == RuleId::kRecoveryAction)
        << core::to_string(report.rule) << ": " << report.message;
  }
}

void expect_recovered(const wl::DiningLoadResult& result) {
  EXPECT_TRUE(result.recovered_rings_completed);
  EXPECT_TRUE(result.clean_rings_completed);
  EXPECT_EQ(result.recovery_actions, 1u);  // exactly one per injected cycle
  EXPECT_EQ(result.false_positive_rings, 0u);
  EXPECT_EQ(result.missed_detections, 0u);
  EXPECT_GT(result.recovery_latency_ns, 0u);
  EXPECT_FALSE(result.recovery_log.empty());
  expect_no_unexpected_reports(result);
}

TEST(RecoveryWorkloadTest, DiningCompletesUnderPoisonVictim) {
  wl::DiningLoadOptions options;
  options.rings = 2;
  options.philosophers = 4;
  options.deadlock_rings = 1;
  options.rounds = 5;
  options.recovery = wl::DiningRecovery::kPoisonVictim;
  options.run_timeout = 20 * kSecond;
  const wl::DiningLoadResult result = wl::run_dining_load(options);
  expect_recovered(result);
  EXPECT_EQ(result.victims_poisoned, 1u);
  EXPECT_EQ(result.monitors_unpoisoned, 1u);  // service restored
  EXPECT_EQ(result.deadlocked_rings_detected, 1u);
}

TEST(RecoveryWorkloadTest, DiningCompletesUnderDeliverFault) {
  wl::DiningLoadOptions options;
  options.rings = 2;
  options.philosophers = 4;
  options.deadlock_rings = 1;
  options.rounds = 5;
  options.recovery = wl::DiningRecovery::kDeliverFault;
  options.run_timeout = 20 * kSecond;
  const wl::DiningLoadResult result = wl::run_dining_load(options);
  expect_recovered(result);
  EXPECT_EQ(result.faults_delivered, 1u);
  EXPECT_EQ(result.victims_poisoned, 0u);
}

TEST(RecoveryWorkloadTest, DiningCompletesUnderImposedOrder) {
  wl::DiningLoadOptions options;
  options.rings = 2;
  options.philosophers = 4;
  options.deadlock_rings = 1;
  options.rounds = 5;
  options.recovery = wl::DiningRecovery::kImposeOrder;
  options.run_timeout = 20 * kSecond;
  const wl::DiningLoadResult result = wl::run_dining_load(options);
  EXPECT_TRUE(result.recovered_rings_completed);
  EXPECT_TRUE(result.clean_rings_completed);
  EXPECT_EQ(result.orders_imposed, 1u);
  EXPECT_EQ(result.recovery_actions, 1u);
  // Pre-emption: the cycle never closes, so no structural deadlock and no
  // victim -- that is the point.
  EXPECT_EQ(result.victims_poisoned, 0u);
  EXPECT_EQ(result.faults_delivered, 0u);
  EXPECT_EQ(result.false_positive_rings, 0u);
  EXPECT_GT(result.recovery_latency_ns, 0u);
  expect_no_unexpected_reports(result);
}

TEST(RecoveryWorkloadTest, ConsistentOrderControlDrawsZeroActions) {
  wl::GateCrossingOptions options;
  options.consistent_order = true;
  options.recovery = true;
  const wl::GateCrossingResult result = wl::run_gate_crossing(options);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.potential_deadlocks, 0u);
  EXPECT_EQ(result.recovery_actions, 0u);
  EXPECT_EQ(result.orders_imposed, 0u);
  EXPECT_TRUE(result.recovery_log.empty());
}

TEST(RecoveryWorkloadTest, RotatedGateCrossingImposesTheDominantOrder) {
  wl::GateCrossingOptions options;
  options.recovery = true;
  const wl::GateCrossingResult result = wl::run_gate_crossing(options);
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.potential_deadlocks, 1u);
  EXPECT_EQ(result.global_deadlocks, 0u);
  EXPECT_GE(result.orders_imposed, 1u);
  EXPECT_EQ(result.orders_imposed, result.recovery_actions);
  EXPECT_FALSE(result.imposed_order.empty());
  ASSERT_FALSE(result.recovery_log.empty());
  EXPECT_EQ(result.recovery_log[0].action, 'O');
}

}  // namespace
}  // namespace robmon
