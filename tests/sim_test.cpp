// Tests for the deterministic scheduler and the simulated monitor:
// coroutine mechanics, virtual time, Hoare hand-off semantics, and the
// reduced event recording model.
#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.hpp"
#include "sim/sim_monitor.hpp"
#include "trace/codec.hpp"

namespace robmon::sim {
namespace {

using core::MonitorSpec;
using trace::EventKind;

Process appender(Scheduler& sched, std::vector<int>& order, int id,
                 int rounds) {
  for (int i = 0; i < rounds; ++i) {
    order.push_back(id);
    co_await sched.yield();
  }
}

TEST(SchedulerTest, FifoRoundRobin) {
  Scheduler sched;
  std::vector<int> order;
  sched.spawn(0, appender(sched, order, 0, 2));
  sched.spawn(1, appender(sched, order, 1, 2));
  EXPECT_EQ(sched.run(), Scheduler::StopReason::kAllDone);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1}));
}

TEST(SchedulerTest, RandomPolicyDeterministicPerSeed) {
  auto trace_for = [](std::uint64_t seed) {
    Scheduler sched(Scheduler::Options{1000, SchedulePolicy::kRandom, seed});
    std::vector<int> order;
    for (int p = 0; p < 4; ++p) sched.spawn(p, appender(sched, order, p, 5));
    sched.run();
    return order;
  };
  EXPECT_EQ(trace_for(7), trace_for(7));
  EXPECT_NE(trace_for(7), trace_for(8));
}

TEST(SchedulerTest, VirtualTimeAdvancesPerStep) {
  Scheduler sched(Scheduler::Options{500, SchedulePolicy::kFifo, 1});
  std::vector<int> order;
  sched.spawn(0, appender(sched, order, 0, 3));
  sched.run();
  // 3 appends + final resume that completes the coroutine = 4 steps.
  EXPECT_EQ(sched.now(), 4 * 500);
}

Process sleeper(Scheduler& sched, util::TimeNs delay, bool& woke) {
  co_await sched.delay(delay);
  woke = true;
}

TEST(SchedulerTest, DelayJumpsClockWhenIdle) {
  Scheduler sched;
  bool woke = false;
  sched.spawn(0, sleeper(sched, 10 * util::kMillisecond, woke));
  EXPECT_EQ(sched.run(), Scheduler::StopReason::kAllDone);
  EXPECT_TRUE(woke);
  EXPECT_GE(sched.now(), 10 * util::kMillisecond);
}

Process parker(Scheduler& sched, bool& resumed) {
  co_await sched.park();
  resumed = true;
}

Process unparker(Scheduler& sched, trace::Pid target) {
  co_await sched.yield();
  sched.unpark(target);
  co_return;
}

TEST(SchedulerTest, ParkUnpark) {
  Scheduler sched;
  bool resumed = false;
  sched.spawn(0, parker(sched, resumed));
  sched.spawn(1, unparker(sched, 0));
  EXPECT_EQ(sched.run(), Scheduler::StopReason::kAllDone);
  EXPECT_TRUE(resumed);
}

TEST(SchedulerTest, QuiescentWhenAllParked) {
  Scheduler sched;
  bool resumed = false;
  sched.spawn(0, parker(sched, resumed));
  EXPECT_EQ(sched.run(), Scheduler::StopReason::kQuiescent);
  EXPECT_FALSE(resumed);
  EXPECT_TRUE(sched.is_parked(0));
  EXPECT_EQ(sched.parked_pids(), std::vector<trace::Pid>{0});
}

TEST(SchedulerTest, MaxStepsBudget) {
  Scheduler sched;
  std::vector<int> order;
  sched.spawn(0, appender(sched, order, 0, 1000000));
  EXPECT_EQ(sched.run(10), Scheduler::StopReason::kMaxSteps);
  EXPECT_EQ(sched.steps(), 10u);
}

Process thrower(Scheduler& sched) {
  co_await sched.yield();
  throw std::runtime_error("boom");
}

TEST(SchedulerTest, ExceptionsSurfaceViaRethrow) {
  Scheduler sched;
  sched.spawn(0, thrower(sched));
  sched.run();
  EXPECT_THROW(sched.rethrow_any_failure(), std::runtime_error);
}

TEST(SchedulerTest, DuplicatePidRejected) {
  Scheduler sched;
  std::vector<int> order;
  sched.spawn(0, appender(sched, order, 0, 1));
  EXPECT_THROW(sched.spawn(0, appender(sched, order, 0, 1)),
               std::invalid_argument);
}

// --- SimMonitor semantics. --------------------------------------------------

struct MonitorRig {
  Scheduler sched;
  MonitorSpec spec = MonitorSpec::manager("m");
  SimMonitor monitor{spec, sched};
};

Process enter_exit(SimMonitor& mon, std::vector<trace::Pid>& order,
                   trace::Pid pid, util::TimeNs hold) {
  co_await mon.enter("Op");
  order.push_back(pid);
  if (hold > 0) co_await mon.scheduler().delay(hold);
  mon.exit();
}

TEST(SimMonitorTest, MutualExclusionAndFifoEntry) {
  MonitorRig rig;
  std::vector<trace::Pid> order;
  for (trace::Pid p = 0; p < 4; ++p) {
    rig.sched.spawn(p, enter_exit(rig.monitor, order, p, 500'000));
  }
  EXPECT_EQ(rig.sched.run(), Scheduler::StopReason::kAllDone);
  EXPECT_EQ(order, (std::vector<trace::Pid>{0, 1, 2, 3}));
  EXPECT_FALSE(rig.monitor.owner().has_value());
}

TEST(SimMonitorTest, EventSequenceForUncontendedEnterExit) {
  MonitorRig rig;
  std::vector<trace::Pid> order;
  rig.sched.spawn(1, enter_exit(rig.monitor, order, 1, 0));
  rig.sched.run();
  const auto events = rig.monitor.log().drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kEnter);
  EXPECT_TRUE(events[0].flag);  // immediate entry
  EXPECT_EQ(events[1].kind, EventKind::kSignalExit);
  EXPECT_FALSE(events[1].flag);
}

TEST(SimMonitorTest, ContendedEntryRecordsFlagZeroOnce) {
  MonitorRig rig;
  std::vector<trace::Pid> order;
  rig.sched.spawn(1, enter_exit(rig.monitor, order, 1, 500'000));
  rig.sched.spawn(2, enter_exit(rig.monitor, order, 2, 0));
  rig.sched.run();
  const auto events = rig.monitor.log().drain();
  // Enter(1,1), Enter(2,0), SignalExit(1), SignalExit(2): the resume of p2
  // is implied by SignalExit(1) per the reduced model, not re-recorded.
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].pid, 1);
  EXPECT_TRUE(events[0].flag);
  EXPECT_EQ(events[1].pid, 2);
  EXPECT_FALSE(events[1].flag);
  EXPECT_EQ(events[2].pid, 1);
  EXPECT_EQ(events[2].kind, EventKind::kSignalExit);
  EXPECT_EQ(events[3].pid, 2);
}

Process wait_then_exit(SimMonitor& mon, std::vector<int>& marks, int before,
                       int after) {
  co_await mon.enter("Waiter");
  marks.push_back(before);
  co_await mon.wait("go");
  marks.push_back(after);
  mon.exit();
}

Process signal_once(SimMonitor& mon) {
  co_await mon.enter("Signaller");
  mon.signal_exit("go");
}

TEST(SimMonitorTest, SignalExitHandsOffToCondWaiter) {
  MonitorRig rig;
  std::vector<int> marks;
  rig.sched.spawn(1, wait_then_exit(rig.monitor, marks, 10, 11));
  rig.sched.spawn(2, signal_once(rig.monitor));
  EXPECT_EQ(rig.sched.run(), Scheduler::StopReason::kAllDone);
  EXPECT_EQ(marks, (std::vector<int>{10, 11}));
  const auto events = rig.monitor.log().drain();
  // Enter(1,1) Wait(1) Enter(2,1) SignalExit(2,go,1) SignalExit(1).
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[3].kind, EventKind::kSignalExit);
  EXPECT_TRUE(events[3].flag);  // resumed the condition waiter
  EXPECT_EQ(events[4].pid, 1);
}

TEST(SimMonitorTest, SignalWithNoWaiterHasFlagZero) {
  MonitorRig rig;
  rig.sched.spawn(2, signal_once(rig.monitor));
  rig.sched.run();
  const auto events = rig.monitor.log().drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].kind, EventKind::kSignalExit);
  EXPECT_FALSE(events[1].flag);
}

TEST(SimMonitorTest, SnapshotReflectsQueues) {
  MonitorRig rig;
  std::vector<int> marks;
  std::vector<trace::Pid> order;
  rig.sched.spawn(1, wait_then_exit(rig.monitor, marks, 1, 2));
  rig.sched.spawn(2, enter_exit(rig.monitor, order, 2, 10 * util::kSecond));
  rig.sched.spawn(3, enter_exit(rig.monitor, order, 3, 0));
  // Exactly three resume steps: p1 enters and waits on "go", p2 enters and
  // sleeps holding the monitor, p3 queues on EQ.  (More steps would let the
  // virtual clock jump past p2's hold.)
  rig.sched.run(3);
  const auto state = rig.monitor.snapshot();
  EXPECT_EQ(state.running, 2);
  ASSERT_EQ(state.entry_queue.size(), 1u);
  EXPECT_EQ(state.entry_queue[0].pid, 3);
  const auto go = rig.monitor.symbols().find("go");
  ASSERT_NE(go, trace::kNoSymbol);
  ASSERT_EQ(state.cond_entries(go).size(), 1u);
  EXPECT_EQ(state.cond_entries(go)[0].pid, 1);
  EXPECT_EQ(state.blocked_count(), 2u);
}

TEST(SimMonitorTest, RandomSeedYieldsByteIdenticalEventLog) {
  // The determinism contract the schedule explorer builds on, pinned at the
  // coroutine-simulator layer: the serialized event log is a pure function
  // of (workload, seed) — same seed twice gives byte-identical bytes, and
  // nearby seeds take schedules different enough to move the log.
  const auto trace_for = [](std::uint64_t seed) {
    Scheduler sched(Scheduler::Options{1000, SchedulePolicy::kRandom, seed});
    MonitorSpec spec = MonitorSpec::manager("m");
    SimMonitor monitor(spec, sched);
    std::vector<trace::Pid> order;
    for (trace::Pid p = 1; p <= 5; ++p) {
      sched.spawn(p, enter_exit(monitor, order, p, 200'000 * p));
    }
    EXPECT_EQ(sched.run(), Scheduler::StopReason::kAllDone);
    return trace::write_trace_string(trace::make_trace_file(
        "m", "manager", -1, monitor.symbols(), monitor.log().drain(), {}));
  };
  const std::string base = trace_for(99);
  EXPECT_FALSE(base.empty());
  EXPECT_EQ(base, trace_for(99)) << "event log not byte-identical";
  bool diverged = false;
  for (std::uint64_t seed = 100; seed <= 104 && !diverged; ++seed) {
    diverged = trace_for(seed) != base;
  }
  EXPECT_TRUE(diverged) << "seed sweep never changed the event log";
}

TEST(SimMonitorTest, StateTraceAlignsWithEvents) {
  MonitorRig rig;
  rig.monitor.enable_state_trace();
  std::vector<int> marks;
  rig.sched.spawn(1, wait_then_exit(rig.monitor, marks, 1, 2));
  rig.sched.spawn(2, signal_once(rig.monitor));
  rig.sched.run();
  const auto events = rig.monitor.log().drain();
  const auto& states = rig.monitor.state_trace();
  EXPECT_EQ(states.size(), events.size() + 1);
}

TEST(SimMonitorTest, ResourceGaugeInSnapshot) {
  MonitorRig rig;
  std::int64_t value = 42;
  rig.monitor.set_resource_gauge([&value] { return value; });
  EXPECT_EQ(rig.monitor.snapshot().resources, 42);
  value = 7;
  EXPECT_EQ(rig.monitor.snapshot().resources, 7);
}

TEST(SimMonitorTest, NoGaugeMeansNotApplicable) {
  MonitorRig rig;
  EXPECT_EQ(rig.monitor.snapshot().resources, -1);
}

}  // namespace
}  // namespace robmon::sim
