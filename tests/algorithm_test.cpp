// Unit tests for the checking lists and Algorithms 1-3 over hand-crafted
// event segments — each ST-Rule violated in isolation, plus correct
// sequences that must pass silently.
#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "core/checking_lists.hpp"
#include "core/detector.hpp"
#include "core/fault.hpp"
#include "core/monitor_spec.hpp"

namespace robmon::core {
namespace {

using trace::EventRecord;
using trace::SchedulingState;
using trace::SymbolId;
using util::kMillisecond;

class ChecklistFixture : public ::testing::Test {
 protected:
  ChecklistFixture() {
    spec_ = MonitorSpec::manager("m");
    spec_.t_max = 50 * kMillisecond;
    spec_.t_io = 100 * kMillisecond;
    op_ = symbols_.intern("Op");
    cond_ = symbols_.intern("cond");
  }

  std::size_t run1(const SchedulingState& prev, const SchedulingState& cur,
                   const std::vector<EventRecord>& events,
                   util::TimeNs now = 10 * kMillisecond) {
    sink_.clear();
    const CheckContext ctx = CheckContext::make(spec_, symbols_, now, sink_);
    return run_algorithm1(ctx, prev, cur, events);
  }

  bool reported(RuleId rule) const { return sink_.any_with_rule(rule); }

  MonitorSpec spec_;
  trace::SymbolTable symbols_;
  CollectingSink sink_;
  SymbolId op_;
  SymbolId cond_;
};

TEST_F(ChecklistFixture, FromStateSeedsLists) {
  SchedulingState prev;
  prev.entry_queue = {{2, op_, 100}};
  prev.cond_queues = {{cond_, {{3, op_, 50}}}};
  prev.running = 1;
  prev.running_proc = op_;
  prev.resources = 4;
  const CheckingLists lists = CheckingLists::from_state(prev);
  ASSERT_EQ(lists.enter_zero.size(), 1u);
  EXPECT_EQ(lists.enter_zero.front().pid, 2);
  ASSERT_EQ(lists.wait_cond.at(cond_).size(), 1u);
  ASSERT_EQ(lists.running.size(), 1u);
  EXPECT_EQ(lists.running[0].pid, 1);
  EXPECT_EQ(lists.resource_no, 4);
  EXPECT_TRUE(lists.pid_blocked(2));
  EXPECT_TRUE(lists.pid_blocked(3));
  EXPECT_FALSE(lists.pid_blocked(1));
  EXPECT_TRUE(lists.pid_running(1));
}

TEST_F(ChecklistFixture, ListsMatchComparesPidsAndProcs) {
  std::deque<ListEntry> rebuilt = {{1, op_, 0}, {2, op_, 0}};
  std::vector<trace::QueueEntry> actual = {{1, op_, 5}, {2, op_, 9}};
  EXPECT_TRUE(lists_match(rebuilt, actual));
  actual[1].pid = 3;
  EXPECT_FALSE(lists_match(rebuilt, actual));
  actual.pop_back();
  EXPECT_FALSE(lists_match(rebuilt, actual));
}

TEST_F(ChecklistFixture, EmptySegmentEmptyStatesIsClean) {
  EXPECT_EQ(run1({}, {}, {}), 0u);
}

TEST_F(ChecklistFixture, EnterExitWithinSegmentIsClean) {
  const std::vector<EventRecord> events = {
      EventRecord::enter(1, op_, true, 1000),
      EventRecord::signal_exit(1, op_, trace::kNoSymbol, false, 2000),
  };
  EXPECT_EQ(run1({}, {}, events), 0u);
}

TEST_F(ChecklistFixture, WaitHandoffToEntryHeadIsClean) {
  SchedulingState prev;
  prev.running = 1;
  prev.running_proc = op_;
  prev.entry_queue = {{2, op_, 500}};

  const std::vector<EventRecord> events = {
      EventRecord::wait(1, op_, cond_, 1000),
  };

  SchedulingState cur;
  cur.running = 2;
  cur.running_proc = op_;
  cur.running_since = 1000;
  cur.cond_queues = {{cond_, {{1, op_, 1000}}}};
  EXPECT_EQ(run1(prev, cur, events), 0u);
}

TEST_F(ChecklistFixture, SignalHandoffToCondWaiterIsClean) {
  SchedulingState prev;
  prev.running = 1;
  prev.running_proc = op_;
  prev.cond_queues = {{cond_, {{2, op_, 500}}}};

  const std::vector<EventRecord> events = {
      EventRecord::signal_exit(1, op_, cond_, true, 1000),
  };

  SchedulingState cur;
  cur.running = 2;
  cur.running_proc = op_;
  cur.running_since = 1000;
  cur.cond_queues = {{cond_, {}}};
  EXPECT_EQ(run1(prev, cur, events), 0u);
}

TEST_F(ChecklistFixture, St3cEnterWhileOccupied) {
  const std::vector<EventRecord> events = {
      EventRecord::enter(1, op_, true, 1000),
      EventRecord::enter(2, op_, true, 1100),
  };
  SchedulingState cur;  // whatever follows, the replay already fails
  cur.running = 1;
  cur.running_proc = op_;
  run1({}, cur, events);
  EXPECT_TRUE(reported(RuleId::kSt3cEnterWhileOccupied));
  EXPECT_TRUE(reported(RuleId::kSt3aMultipleRunning));
}

TEST_F(ChecklistFixture, St3dBlockedWhileFree) {
  const std::vector<EventRecord> events = {
      EventRecord::enter(1, op_, false, 1000),
  };
  SchedulingState cur;
  cur.entry_queue = {{1, op_, 1000}};
  run1({}, cur, events);
  EXPECT_TRUE(reported(RuleId::kSt3dBlockedWhileFree));
  EXPECT_FALSE(reported(RuleId::kSt1EntryQueueMismatch));
}

TEST_F(ChecklistFixture, St3bWaitFromNonRunner) {
  const std::vector<EventRecord> events = {
      EventRecord::wait(1, op_, cond_, 1000),
  };
  SchedulingState cur;
  cur.cond_queues = {{cond_, {{1, op_, 1000}}}};
  run1({}, cur, events);
  EXPECT_TRUE(reported(RuleId::kSt3bRunnerNotSole));
}

TEST_F(ChecklistFixture, St4EventFromBlockedProcess) {
  SchedulingState prev;
  prev.running = 1;
  prev.running_proc = op_;
  prev.entry_queue = {{2, op_, 500}};
  const std::vector<EventRecord> events = {
      // p2 is on the entry queue and must not act.
      EventRecord::wait(2, op_, cond_, 1000),
  };
  SchedulingState cur = prev;
  run1(prev, cur, events);
  EXPECT_TRUE(reported(RuleId::kSt4EventFromBlockedProcess));
}

TEST_F(ChecklistFixture, St1EntryQueueMismatch) {
  SchedulingState prev;
  prev.running = 1;
  prev.running_proc = op_;
  prev.entry_queue = {{2, op_, 500}};
  SchedulingState cur = prev;
  cur.entry_queue.clear();  // p2 vanished without being admitted
  run1(prev, cur, {});
  EXPECT_TRUE(reported(RuleId::kSt1EntryQueueMismatch));
}

TEST_F(ChecklistFixture, St2CondQueueMismatch) {
  SchedulingState prev;
  prev.running = 1;
  prev.running_proc = op_;
  prev.cond_queues = {{cond_, {{3, op_, 500}}}};
  SchedulingState cur = prev;
  cur.cond_queues[0].entries.clear();  // p3 vanished without a signal
  run1(prev, cur, {});
  EXPECT_TRUE(reported(RuleId::kSt2CondQueueMismatch));
}

TEST_F(ChecklistFixture, RunningMismatch) {
  SchedulingState cur;
  cur.running = 7;
  cur.running_proc = op_;
  run1({}, cur, {});
  EXPECT_TRUE(reported(RuleId::kStRunningMismatch));
}

TEST_F(ChecklistFixture, SignalClaimsResumeFromEmptyQueue) {
  SchedulingState prev;
  prev.running = 1;
  prev.running_proc = op_;
  const std::vector<EventRecord> events = {
      EventRecord::signal_exit(1, op_, cond_, true, 1000),  // flag=1, no waiter
  };
  run1(prev, {}, events);
  EXPECT_TRUE(reported(RuleId::kSt2CondQueueMismatch));
}

TEST_F(ChecklistFixture, St5RunningExceedsTmax) {
  SchedulingState cur;
  cur.running = 1;
  cur.running_proc = op_;
  cur.running_since = 0;
  run1(cur, cur, {}, /*now=*/60 * kMillisecond);  // Tmax = 50ms
  EXPECT_TRUE(reported(RuleId::kSt5ResidenceExceedsTmax));
}

TEST_F(ChecklistFixture, St5CondWaitExceedsTmax) {
  SchedulingState state;
  state.running = 1;
  state.running_proc = op_;
  state.running_since = 55 * kMillisecond;
  state.cond_queues = {{cond_, {{2, op_, 0}}}};
  run1(state, state, {}, /*now=*/60 * kMillisecond);
  EXPECT_TRUE(reported(RuleId::kSt5ResidenceExceedsTmax));
}

TEST_F(ChecklistFixture, St6EntryWaitExceedsTio) {
  SchedulingState state;
  state.running = 1;
  state.running_proc = op_;
  state.running_since = 100 * kMillisecond;
  state.entry_queue = {{2, op_, 0}};
  run1(state, state, {}, /*now=*/110 * kMillisecond);  // Tio = 100ms
  EXPECT_TRUE(reported(RuleId::kSt6EntryWaitExceedsTio));
}

TEST_F(ChecklistFixture, FreshWaitersUnderTimersAreClean) {
  SchedulingState state;
  state.running = 1;
  state.running_proc = op_;
  state.running_since = 9 * kMillisecond;
  state.entry_queue = {{2, op_, 9 * kMillisecond}};
  EXPECT_EQ(run1(state, state, {}, /*now=*/10 * kMillisecond), 0u);
}

// ---------------------------------------------------------------------------
// Algorithm-2 (communication coordinator).
// ---------------------------------------------------------------------------

class Algorithm2Fixture : public ::testing::Test {
 protected:
  Algorithm2Fixture() {
    spec_ = MonitorSpec::coordinator("buf", 2);
    send_ = symbols_.intern("Send");
    receive_ = symbols_.intern("Receive");
    full_ = symbols_.intern("full");
    empty_ = symbols_.intern("empty");
  }

  std::size_t run2(std::int64_t prev_resources, std::int64_t cur_resources,
                   const std::vector<EventRecord>& events) {
    sink_.clear();
    SchedulingState prev;
    prev.resources = prev_resources;
    SchedulingState cur;
    cur.resources = cur_resources;
    const CheckContext ctx =
        CheckContext::make(spec_, symbols_, 10 * kMillisecond, sink_);
    return run_algorithm2(ctx, prev, cur, events, counters_);
  }

  bool reported(RuleId rule) const { return sink_.any_with_rule(rule); }

  MonitorSpec spec_;
  trace::SymbolTable symbols_;
  CollectingSink sink_;
  ResourceCounters counters_;
  SymbolId send_, receive_, full_, empty_;
};

TEST_F(Algorithm2Fixture, BalancedTrafficIsClean) {
  const std::vector<EventRecord> events = {
      EventRecord::signal_exit(1, send_, empty_, false, 100),
      EventRecord::signal_exit(2, receive_, full_, false, 200),
      EventRecord::signal_exit(1, send_, empty_, false, 300),
  };
  EXPECT_EQ(run2(2, 1, events), 0u);
  EXPECT_EQ(counters_.sends, 2);
  EXPECT_EQ(counters_.receives, 1);
}

TEST_F(Algorithm2Fixture, OverfillReportsSendExceedsCapacity) {
  const std::vector<EventRecord> events = {
      EventRecord::signal_exit(1, send_, empty_, false, 100),
      EventRecord::signal_exit(1, send_, empty_, false, 200),
      EventRecord::signal_exit(1, send_, empty_, false, 300),  // third: over
  };
  run2(2, -1, events);
  EXPECT_TRUE(reported(RuleId::kSt7aSendExceedsCapacity));
}

TEST_F(Algorithm2Fixture, PhantomReceiveReportsReceiveExceedsSend) {
  const std::vector<EventRecord> events = {
      EventRecord::signal_exit(2, receive_, full_, false, 100),
  };
  run2(2, 3, events);
  EXPECT_TRUE(reported(RuleId::kSt7aReceiveExceedsSend));
}

TEST_F(Algorithm2Fixture, SendDelayedWhenNotFull) {
  const std::vector<EventRecord> events = {
      EventRecord::wait(1, send_, full_, 100),  // 2 slots free, not full
  };
  run2(2, 2, events);
  EXPECT_TRUE(reported(RuleId::kSt7cSendDelayedWhenNotFull));
}

TEST_F(Algorithm2Fixture, SendDelayedWhenFullIsLegitimate) {
  const std::vector<EventRecord> events = {
      EventRecord::wait(1, send_, full_, 100),
  };
  EXPECT_EQ(run2(0, 0, events), 0u);
}

TEST_F(Algorithm2Fixture, ReceiveDelayedWhenNotEmpty) {
  const std::vector<EventRecord> events = {
      EventRecord::wait(2, receive_, empty_, 100),  // 1 slot free: not empty
  };
  run2(1, 1, events);
  EXPECT_TRUE(reported(RuleId::kSt7dReceiveDelayedWhenNotEmpty));
}

TEST_F(Algorithm2Fixture, ReceiveDelayedWhenEmptyIsLegitimate) {
  const std::vector<EventRecord> events = {
      EventRecord::wait(2, receive_, empty_, 100),
  };
  EXPECT_EQ(run2(2, 2, events), 0u);
}

TEST_F(Algorithm2Fixture, BalanceMismatchReported) {
  const std::vector<EventRecord> events = {
      EventRecord::signal_exit(1, send_, empty_, false, 100),
  };
  run2(2, 2, events);  // send happened but R# did not move
  EXPECT_TRUE(reported(RuleId::kSt7bResourceBalanceMismatch));
}

TEST_F(Algorithm2Fixture, CumulativeCountersSpanChecks) {
  run2(2, 1, {EventRecord::signal_exit(1, send_, empty_, false, 100)});
  run2(1, 0, {EventRecord::signal_exit(1, send_, empty_, false, 200)});
  EXPECT_EQ(counters_.sends, 2);
  // Third send in a third segment exceeds capacity cumulatively.
  run2(0, -1, {EventRecord::signal_exit(1, send_, empty_, false, 300)});
  EXPECT_TRUE(reported(RuleId::kSt7aSendExceedsCapacity));
}

// ---------------------------------------------------------------------------
// Algorithm-3 (resource allocator).
// ---------------------------------------------------------------------------

class Algorithm3Fixture : public ::testing::Test {
 protected:
  Algorithm3Fixture() {
    spec_ = MonitorSpec::allocator("alloc");
    spec_.t_limit = 100 * kMillisecond;
    acquire_ = symbols_.intern("Acquire");
    release_ = symbols_.intern("Release");
    available_ = symbols_.intern("available");
  }

  std::size_t run3(const std::vector<EventRecord>& events,
                   util::TimeNs now = 10 * kMillisecond) {
    sink_.clear();
    const CheckContext ctx = CheckContext::make(spec_, symbols_, now, sink_);
    return run_algorithm3(ctx, events, requests_);
  }

  bool reported(RuleId rule) const { return sink_.any_with_rule(rule); }

  MonitorSpec spec_;
  trace::SymbolTable symbols_;
  CollectingSink sink_;
  RequestList requests_;
  SymbolId acquire_, release_, available_;
};

TEST_F(Algorithm3Fixture, AcquireReleaseCycleIsClean) {
  const std::vector<EventRecord> events = {
      EventRecord::enter(1, acquire_, true, 1000),
      EventRecord::signal_exit(1, acquire_, trace::kNoSymbol, false, 1100),
      EventRecord::enter(1, release_, true, 2000),
      EventRecord::signal_exit(1, release_, available_, false, 2100),
  };
  EXPECT_EQ(run3(events), 0u);
  EXPECT_TRUE(requests_.entries.empty());
}

TEST_F(Algorithm3Fixture, DuplicateAcquireReported) {
  const std::vector<EventRecord> events = {
      EventRecord::enter(1, acquire_, true, 1000),
      EventRecord::enter(1, acquire_, true, 2000),
  };
  run3(events);
  EXPECT_TRUE(reported(RuleId::kSt8aDuplicateAcquire));
}

TEST_F(Algorithm3Fixture, ReleaseWithoutAcquireReported) {
  const std::vector<EventRecord> events = {
      EventRecord::enter(1, release_, true, 1000),
  };
  run3(events);
  EXPECT_TRUE(reported(RuleId::kSt8bReleaseWithoutAcquire));
}

TEST_F(Algorithm3Fixture, HoldBeyondTlimitReported) {
  run3({EventRecord::enter(1, acquire_, true, 0)},
       /*now=*/50 * kMillisecond);
  EXPECT_FALSE(reported(RuleId::kSt8cHoldExceedsTlimit));
  run3({}, /*now=*/150 * kMillisecond);  // Tlimit = 100ms
  EXPECT_TRUE(reported(RuleId::kSt8cHoldExceedsTlimit));
}

TEST_F(Algorithm3Fixture, RequestListPersistsAcrossChecks) {
  run3({EventRecord::enter(1, acquire_, true, 1000)});
  ASSERT_EQ(requests_.entries.size(), 1u);
  run3({EventRecord::enter(1, release_, true, 2000),
        EventRecord::signal_exit(1, release_, available_, false, 2100)});
  EXPECT_TRUE(requests_.entries.empty());
  EXPECT_EQ(sink_.count(), 0u);
}

TEST_F(Algorithm3Fixture, DistinctPidsMayHoldConcurrently) {
  const std::vector<EventRecord> events = {
      EventRecord::enter(1, acquire_, true, 1000),
      EventRecord::enter(2, acquire_, true, 1100),
  };
  EXPECT_EQ(run3(events), 0u);
  EXPECT_EQ(requests_.entries.size(), 2u);
}

// ---------------------------------------------------------------------------
// Detector dispatch.
// ---------------------------------------------------------------------------

TEST(DetectorTest, DispatchesByMonitorType) {
  trace::SymbolTable symbols;
  CollectingSink sink;
  MonitorSpec spec = MonitorSpec::coordinator("buf", 2);
  Detector detector(spec, symbols, sink);
  detector.initialize({});
  const SymbolId send = symbols.intern(spec.send_procedure);
  const SymbolId empty = symbols.intern(spec.empty_condition);

  SchedulingState prev;  // initialize() state
  prev.resources = 2;
  detector.initialize(prev);

  SchedulingState cur;
  cur.resources = 1;
  const auto stats = detector.check(
      {EventRecord::enter(1, send, true, 1000),
       EventRecord::signal_exit(1, send, empty, false, 1100)},
      cur, 10 * kMillisecond);
  EXPECT_EQ(stats.events, 2u);
  EXPECT_EQ(stats.violations, 0u);
  EXPECT_EQ(detector.checks_run(), 1u);
  EXPECT_EQ(detector.counters().sends, 1);
}

TEST(DetectorTest, TracksTotalsAcrossChecks) {
  trace::SymbolTable symbols;
  CollectingSink sink;
  MonitorSpec spec = MonitorSpec::manager("m");
  Detector detector(spec, symbols, sink);
  detector.initialize({});
  const SymbolId op = symbols.intern("Op");

  detector.check({EventRecord::enter(1, op, true, 100),
                  EventRecord::signal_exit(1, op, trace::kNoSymbol, false,
                                           200)},
                 {}, 1 * kMillisecond);
  detector.check({}, {}, 2 * kMillisecond);
  EXPECT_EQ(detector.checks_run(), 2u);
  EXPECT_EQ(detector.events_processed(), 2u);
  EXPECT_EQ(detector.total_violations(), 0u);
}

}  // namespace
}  // namespace robmon::core
