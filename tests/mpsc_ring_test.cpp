#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "sync/mpsc_ring.hpp"

namespace robmon::sync {
namespace {

TEST(MpscRingTest, SingleThreadFifo) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(i));
  std::vector<int> out;
  EXPECT_EQ(ring.consume([&](int v) { out.push_back(v); }), 5u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(ring.consume([&](int) {}), 0u);
}

TEST(MpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(1000).capacity(), 1024u);
}

TEST(MpscRingTest, FullRingRejectsPushUntilConsumed) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.size_estimate(), 4u);

  // Consuming frees every slot for reuse.
  EXPECT_EQ(ring.consume([](int) {}), 4u);
  EXPECT_EQ(ring.size_estimate(), 0u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(10 + i));
  EXPECT_FALSE(ring.try_push(99));
}

TEST(MpscRingTest, PeekIsNonDestructive) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 3; ++i) ring.try_push(i);
  std::vector<int> seen;
  EXPECT_EQ(ring.peek([&](const int& v) { seen.push_back(v); }), 3u);
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2}));
  // The same elements are still there for consume().
  seen.clear();
  EXPECT_EQ(ring.consume([&](int v) { seen.push_back(v); }), 3u);
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2}));
}

TEST(MpscRingTest, ConsumeMaxBoundsTheBatch) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 6; ++i) ring.try_push(i);
  std::vector<int> out;
  EXPECT_EQ(ring.consume([&](int v) { out.push_back(v); }, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(ring.consume([&](int v) { out.push_back(v); }), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(MpscRingTest, WrapsAroundManyLaps) {
  MpscRing<std::uint64_t> ring(4);
  std::uint64_t next_expected = 0;
  for (std::uint64_t lap = 0; lap < 1000; ++lap) {
    for (std::uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_push(lap * 3 + i));
    }
    ASSERT_EQ(ring.consume([&](std::uint64_t v) {
                ASSERT_EQ(v, next_expected);
                ++next_expected;
              }),
              3u);
  }
  EXPECT_EQ(next_expected, 3000u);
}

// The MPSC contract under TSan: concurrent producers, one consumer, no
// element lost or duplicated, per-producer order preserved.
TEST(MpscRingTest, ConcurrentProducersSingleConsumerLossless) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  MpscRing<std::uint64_t> ring(256);

  std::atomic<bool> done{false};
  std::vector<std::uint64_t> consumed;
  consumed.reserve(kProducers * kPerProducer);
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire)) {
      ring.consume([&](std::uint64_t v) { consumed.push_back(v); });
    }
    // Final sweep after every producer has finished.
    ring.consume([&](std::uint64_t v) { consumed.push_back(v); });
  });

  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        // Encode (producer, index) so the consumer can check order.
        while (!ring.try_push((p << 32) | i)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  ASSERT_EQ(consumed.size(), kProducers * kPerProducer);
  std::vector<std::uint64_t> next(kProducers, 0);
  for (const std::uint64_t v : consumed) {
    const std::uint64_t p = v >> 32;
    const std::uint64_t i = v & 0xffffffffu;
    ASSERT_LT(p, kProducers);
    // Per-producer FIFO: each producer's elements arrive in push order.
    ASSERT_EQ(i, next[p]);
    ++next[p];
  }
  for (const std::uint64_t n : next) EXPECT_EQ(n, kPerProducer);
}

}  // namespace
}  // namespace robmon::sync
