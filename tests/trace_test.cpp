#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>
#include <vector>

#include "trace/codec.hpp"
#include "trace/event.hpp"
#include "trace/event_log.hpp"
#include "trace/snapshot.hpp"

namespace robmon::trace {
namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable symbols;
  const SymbolId send = symbols.intern("Send");
  const SymbolId receive = symbols.intern("Receive");
  EXPECT_NE(send, receive);
  EXPECT_EQ(symbols.intern("Send"), send);
  EXPECT_EQ(symbols.name(send), "Send");
  EXPECT_EQ(symbols.size(), 2u);
}

TEST(SymbolTableTest, FindWithoutIntern) {
  SymbolTable symbols;
  EXPECT_EQ(symbols.find("missing"), kNoSymbol);
  const SymbolId id = symbols.intern("present");
  EXPECT_EQ(symbols.find("present"), id);
}

TEST(SymbolTableTest, NoSymbolRendersDash) {
  SymbolTable symbols;
  EXPECT_EQ(symbols.name(kNoSymbol), "-");
}

TEST(SymbolTableTest, UnknownIdThrows) {
  SymbolTable symbols;
  EXPECT_THROW(symbols.name(7), std::out_of_range);
}

TEST(EventTest, FactoryFieldAssignment) {
  const auto enter = EventRecord::enter(3, 1, true, 500);
  EXPECT_EQ(enter.kind, EventKind::kEnter);
  EXPECT_EQ(enter.pid, 3);
  EXPECT_EQ(enter.proc, 1);
  EXPECT_TRUE(enter.flag);
  EXPECT_EQ(enter.time, 500);

  const auto wait = EventRecord::wait(4, 1, 2, 600);
  EXPECT_EQ(wait.kind, EventKind::kWait);
  EXPECT_EQ(wait.cond, 2);

  const auto sigexit = EventRecord::signal_exit(5, 1, 2, true, 700);
  EXPECT_EQ(sigexit.kind, EventKind::kSignalExit);
  EXPECT_TRUE(sigexit.flag);
}

TEST(EventTest, DescribeHumanReadable) {
  SymbolTable symbols;
  const SymbolId send = symbols.intern("Send");
  const SymbolId full = symbols.intern("full");
  EXPECT_EQ(describe(EventRecord::enter(1, send, true, 0), symbols),
            "Enter(p1, Send, 1)");
  EXPECT_EQ(describe(EventRecord::wait(2, send, full, 0), symbols),
            "Wait(p2, Send, full)");
  EXPECT_EQ(describe(EventRecord::signal_exit(3, send, full, false, 0),
                     symbols),
            "Signal-Exit(p3, Send, full, 0)");
}

TEST(EventLogTest, AppendAssignsSequence) {
  EventLog log;
  EXPECT_EQ(log.append(EventRecord::enter(1, 0, true, 10)), 0u);
  EXPECT_EQ(log.append(EventRecord::enter(2, 0, false, 20)), 1u);
  EXPECT_EQ(log.seq_block(), EventLog::kDefaultSeqBlock);
  EXPECT_EQ(log.pending(), 2u);
  EXPECT_EQ(log.total_appended(), 2u);
}

TEST(EventLogTest, DrainEmptiesBuffer) {
  EventLog log;
  log.append(EventRecord::enter(1, 0, true, 10));
  log.append(EventRecord::wait(1, 0, 1, 20));
  const auto first = log.drain();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].seq, 0u);
  EXPECT_EQ(first[1].seq, 1u);
  EXPECT_EQ(log.pending(), 0u);
  EXPECT_TRUE(log.drain().empty());
  log.append(EventRecord::signal_exit(1, 0, 1, false, 30));
  const auto second = log.drain();
  ASSERT_EQ(second.size(), 1u);
  // Drain boundaries are pinned in seq space: the drain retired the unused
  // block remainder, so the next append sorts strictly after the first
  // segment (seqs are unique and boundary-monotone, not dense).
  EXPECT_GT(second[0].seq, first[1].seq);
  EXPECT_EQ(log.total_appended(), 3u);
}

TEST(EventLogTest, SeqBlockOneKeepsDenseSequences) {
  // Block size 1 reproduces the per-event allocation: dense seqs across
  // drain boundaries (the appender-throughput bench baseline).
  EventLog log(/*retain_history=*/false, EventLog::kDefaultShards,
               /*seq_block=*/1);
  log.append(EventRecord::enter(1, 0, true, 10));
  log.append(EventRecord::wait(1, 0, 1, 20));
  log.drain();
  log.append(EventRecord::signal_exit(1, 0, 1, false, 30));
  const auto second = log.drain();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].seq, 2u);
}

TEST(EventLogTest, RetentionArchivesEverything) {
  EventLog log(/*retain_history=*/true);
  log.append(EventRecord::enter(1, 0, true, 10));
  log.drain();
  log.append(EventRecord::wait(1, 0, 1, 20));
  log.drain();
  const auto history = log.history();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].kind, EventKind::kEnter);
  EXPECT_EQ(history[1].kind, EventKind::kWait);
}

TEST(EventLogTest, RetentionOffByDefault) {
  EventLog log;
  log.append(EventRecord::enter(1, 0, true, 10));
  EXPECT_TRUE(log.history().empty());
}

TEST(EventLogTest, HistoryIncludesPendingWhenRetained) {
  EventLog log(/*retain_history=*/true);
  log.append(EventRecord::enter(1, 0, true, 10));
  log.append(EventRecord::wait(1, 0, 1, 20));
  log.drain();
  log.append(EventRecord::signal_exit(1, 0, 1, false, 30));  // not drained
  const auto history = log.history();
  ASSERT_EQ(history.size(), 3u);
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_GT(history[i].seq, history[i - 1].seq);  // seq order, not dense
  }
  EXPECT_EQ(history.back().kind, EventKind::kSignalExit);
}

TEST(EventLogTest, ConcurrentAppendsDrainLosslessAndSeqOrdered) {
  EventLog log;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  std::vector<EventRecord> drained;
  std::mutex drained_mu;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        log.append(EventRecord::enter(t, 0, true, static_cast<long>(i)));
        if (i % 256 == 0) {
          // Interleave drains with appends from other threads.
          auto segment = log.drain();
          std::lock_guard<std::mutex> lock(drained_mu);
          drained.insert(drained.end(), segment.begin(), segment.end());
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  {
    auto segment = log.drain();
    drained.insert(drained.end(), segment.begin(), segment.end());
  }
  constexpr std::uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(log.total_appended(), kTotal);
  EXPECT_EQ(log.pending(), 0u);
  ASSERT_EQ(drained.size(), kTotal);
  // Every event exactly once; seqs unique with bounded gaps (each drain may
  // retire up to one partial block per shard).
  const std::uint64_t bound =
      kTotal + (kTotal / 256 + 2) * log.shard_count() * log.seq_block();
  std::vector<bool> seen(bound, false);
  for (const auto& event : drained) {
    ASSERT_LT(event.seq, bound);
    EXPECT_FALSE(seen[event.seq]) << "duplicate seq " << event.seq;
    seen[event.seq] = true;
  }
  // Per-thread monotonicity: sorted by seq, each thread's payloads (the
  // loop index stored in `time`) appear in append order.
  std::sort(drained.begin(), drained.end(),
            [](const EventRecord& a, const EventRecord& b) {
              return a.seq < b.seq;
            });
  std::vector<long> last_payload(kThreads, -1);
  for (const auto& event : drained) {
    ASSERT_GE(event.pid, 0);
    ASSERT_LT(static_cast<std::size_t>(event.pid), last_payload.size());
    EXPECT_GT(event.time, last_payload[event.pid])
        << "thread " << event.pid << " reordered";
    last_payload[event.pid] = event.time;
  }
}

TEST(EventLogTest, QuiescedDrainIsSeqSortedAndBoundaryMonotone) {
  // With appenders quiesced (the checker-gate discipline), each drain is a
  // lossless, seq-sorted segment, and no later event sorts below it (the
  // drain retires every shard's unused sequence-block remainder).
  EventLog log;
  std::uint64_t previous_max = 0;
  bool have_previous = false;
  for (int round = 0; round < 3; ++round) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&log, t] {
        for (int i = 0; i < 500; ++i) {
          log.append(EventRecord::enter(t, 0, true, i));
        }
      });
    }
    for (auto& thread : threads) thread.join();
    const auto segment = log.drain();
    ASSERT_EQ(segment.size(), 2000u);
    for (std::size_t i = 1; i < segment.size(); ++i) {
      ASSERT_LT(segment[i - 1].seq, segment[i].seq);
    }
    if (have_previous) {
      EXPECT_GT(segment.front().seq, previous_max)
          << "event migrated past a drain boundary in seq space";
    }
    previous_max = segment.back().seq;
    have_previous = true;
  }
}

TEST(EventLogTest, SingleShardSerializedAppendsKeepTotalOrder) {
  // The HoareMonitor discipline: appends from many threads, but serialized
  // by an external lock, into a single-shard log.  The drain-merge must
  // reproduce the exact append order — Algorithm-1 replays the segment as
  // an order-sensitive state machine.
  EventLog log(/*retain_history=*/false, /*shards=*/1);
  std::mutex order_mu;
  long order = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        std::lock_guard<std::mutex> lock(order_mu);
        log.append(EventRecord::enter(1, 0, true, order++));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto segment = log.drain();
  ASSERT_EQ(segment.size(), 2000u);
  for (std::size_t i = 0; i < segment.size(); ++i) {
    ASSERT_EQ(segment[i].time, static_cast<long>(i))
        << "append order lost at position " << i;
  }
}

TEST(EventLogTest, StaleThreadCacheNeverResolvesToDeadShard) {
  // The per-thread shard cache is keyed by log id, not address: destroy a
  // log, construct a new one at the same address, and this thread's cached
  // (now dangling) shard pointer must not resolve for the new log.
  alignas(EventLog) unsigned char storage[sizeof(EventLog)];
  EventLog* log = new (storage) EventLog();
  log->append(EventRecord::enter(1, 0, true, 10));  // warms the cache
  log->~EventLog();
  EventLog* reborn = new (storage) EventLog();
  EXPECT_EQ(reborn->total_appended(), 0u);
  reborn->append(EventRecord::enter(2, 0, true, 20));
  EXPECT_EQ(reborn->total_appended(), 1u);
  const auto segment = reborn->drain();
  ASSERT_EQ(segment.size(), 1u);
  EXPECT_EQ(segment[0].pid, 2);
  EXPECT_EQ(segment[0].seq, 0u);  // fresh log, fresh sequence space
  reborn->~EventLog();
}

TEST(EventLogTest, OverflowSpillsThenDropsWithExactAccounting) {
  EventLog::Options options;
  options.shards = 1;
  options.ring_capacity = 8;
  options.overflow_capacity = 4;
  EventLog log(options);
  for (int i = 0; i < 20; ++i) {
    log.append(EventRecord::enter(1, 0, true, i));
  }
  // 8 fill the ring, 4 spill to the bounded overflow list, 8 drop — and
  // every drop is counted: accepted + lost == issued.
  EXPECT_EQ(log.total_appended(), 12u);
  EXPECT_EQ(log.events_lost(), 8u);
  const auto drained = log.drain();
  ASSERT_EQ(drained.size(), 12u);
  for (std::size_t i = 1; i < drained.size(); ++i) {
    EXPECT_LT(drained[i - 1].seq, drained[i].seq);
  }
  EXPECT_EQ(log.pending(), 0u);
  // The ring is reusable after the drain; the loss counter is cumulative.
  log.append(EventRecord::enter(1, 0, true, 99));
  EXPECT_EQ(log.total_appended(), 13u);
  EXPECT_EQ(log.events_lost(), 8u);
}

TEST(EventLogTest, ConcurrentOverflowAccountingIsExactUnderStalledDrain) {
  // Appender threads race into one deliberately undersized shard while no
  // drain runs (a stalled consumer).  The overflow contract under
  // contention: every append is either accepted — and drains exactly once
  // — or counted lost.  No silent drops, no duplicates.
  EventLog::Options options;
  options.shards = 1;
  options.ring_capacity = 64;
  options.overflow_capacity = 64;
  EventLog log(options);
  constexpr std::uint64_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 1000;
  std::vector<std::thread> threads;
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        log.append(EventRecord::enter(static_cast<Pid>(t), 0, true,
                                      static_cast<long>(i)));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  constexpr std::uint64_t kIssued = kThreads * kPerThread;
  EXPECT_EQ(log.total_appended() + log.events_lost(), kIssued);
  EXPECT_GT(log.events_lost(), 0u);  // 128 slots cannot hold 4000 events
  const auto drained = log.drain();
  EXPECT_EQ(drained.size(), log.total_appended());
  for (std::size_t i = 1; i < drained.size(); ++i) {
    ASSERT_LT(drained[i - 1].seq, drained[i].seq) << "duplicate seq";
  }
  EXPECT_EQ(log.pending(), 0u);
  // Accepting resumes once the drain frees the ring.
  log.append(EventRecord::enter(0, 0, true, 0));
  EXPECT_EQ(log.drain().size(), 1u);
}

TEST(EventLogTest, LockedBackendStillDrainsLosslessly) {
  EventLog::Options options;
  options.backend = EventLog::Backend::kLocked;
  EventLog log(options);
  EXPECT_EQ(log.backend(), EventLog::Backend::kLocked);
  for (int i = 0; i < 100; ++i) {
    log.append(EventRecord::enter(1, 0, true, i));
  }
  EXPECT_EQ(log.events_lost(), 0u);
  EXPECT_EQ(log.drain().size(), 100u);
  EXPECT_EQ(log.pending(), 0u);
}

SchedulingState sample_state() {
  SchedulingState state;
  state.captured_at = 1000;
  state.entry_queue = {{7, 0, 900, 11}, {8, 1, 950, 12}};
  state.cond_queues = {{2, {{9, 0, 800, 10}}}, {3, {}}};
  state.resources = 4;
  state.holders = {{6, 1, 650, 8}};
  state.running = 5;
  state.running_proc = 1;
  state.running_since = 700;
  state.running_ticket = 9;
  return state;
}

TEST(SnapshotTest, CondEntriesLookup) {
  const SchedulingState state = sample_state();
  EXPECT_EQ(state.cond_entries(2).size(), 1u);
  EXPECT_TRUE(state.cond_entries(3).empty());
  EXPECT_TRUE(state.cond_entries(99).empty());
}

TEST(SnapshotTest, BlockedCount) {
  EXPECT_EQ(sample_state().blocked_count(), 3u);
}

TEST(SnapshotTest, EqualityIsStructural) {
  SchedulingState a = sample_state();
  SchedulingState b = sample_state();
  EXPECT_EQ(a, b);
  b.entry_queue.pop_back();
  EXPECT_NE(a, b);
}

TEST(CodecTest, RoundTrip) {
  TraceFile original;
  original.monitor_name = "buf";
  original.monitor_type = "coordinator";
  original.rmax = 8;
  original.symbols = {"Send", "Receive", "full", "empty"};
  original.events.push_back(EventRecord::enter(1, 0, true, 100));
  original.events.back().seq = 0;
  original.events.push_back(EventRecord::wait(1, 0, 2, 200));
  original.events.back().seq = 1;
  original.events.push_back(EventRecord::signal_exit(2, 1, 3, true, 300));
  original.events.back().seq = 2;
  original.checkpoints.push_back(sample_state());

  const std::string text = write_trace_string(original);
  const TraceFile parsed = read_trace_string(text);

  EXPECT_EQ(parsed.monitor_name, original.monitor_name);
  EXPECT_EQ(parsed.monitor_type, original.monitor_type);
  EXPECT_EQ(parsed.rmax, original.rmax);
  EXPECT_EQ(parsed.symbols, original.symbols);
  ASSERT_EQ(parsed.events.size(), original.events.size());
  for (std::size_t i = 0; i < parsed.events.size(); ++i) {
    EXPECT_EQ(parsed.events[i], original.events[i]) << "event " << i;
  }
  ASSERT_EQ(parsed.checkpoints.size(), 1u);
  EXPECT_EQ(parsed.checkpoints[0], original.checkpoints[0]);
}

TEST(CodecTest, EmptyCondQueuePreserved) {
  TraceFile original;
  original.monitor_name = "m";
  original.monitor_type = "manager";
  original.rmax = -1;
  SchedulingState state;
  state.cond_queues = {{0, {}}};
  original.checkpoints.push_back(state);
  const TraceFile parsed = read_trace_string(write_trace_string(original));
  ASSERT_EQ(parsed.checkpoints.size(), 1u);
  ASSERT_EQ(parsed.checkpoints[0].cond_queues.size(), 1u);
  EXPECT_TRUE(parsed.checkpoints[0].cond_queues[0].entries.empty());
}

TEST(CodecTest, RejectsBadMagic) {
  EXPECT_THROW(read_trace_string("not-a-trace\n"), std::runtime_error);
}

TEST(CodecTest, ReadsV1TracesWithoutTickets) {
  // Pre-ticket documents still parse; every episode ticket defaults to 0.
  const std::string v1 =
      "robmon-trace v1\n"
      "monitor buf coordinator 8\n"
      "sym 0 Send\n"
      "state 1000 4 5 0 700\n"
      "eq 7 0 900\n"
      "cq 1 9 0 800\n"
      "hold 6 1 650\n"
      "endstate\n";
  const TraceFile parsed = read_trace_string(v1);
  ASSERT_EQ(parsed.checkpoints.size(), 1u);
  const SchedulingState& state = parsed.checkpoints[0];
  EXPECT_EQ(state.running_ticket, 0u);
  ASSERT_EQ(state.entry_queue.size(), 1u);
  EXPECT_EQ(state.entry_queue[0].pid, 7);
  EXPECT_EQ(state.entry_queue[0].ticket, 0u);
  ASSERT_EQ(state.holders.size(), 1u);
  EXPECT_EQ(state.holders[0].ticket, 0u);
}

TEST(CodecTest, WritesV6WithTickets) {
  TraceFile original;
  original.monitor_name = "m";
  original.monitor_type = "manager";
  original.rmax = -1;
  original.checkpoints.push_back(sample_state());
  const std::string text = write_trace_string(original);
  EXPECT_EQ(text.rfind("robmon-trace v6\n", 0), 0u);
  const TraceFile parsed = read_trace_string(text);
  ASSERT_EQ(parsed.checkpoints.size(), 1u);
  EXPECT_EQ(parsed.checkpoints[0].running_ticket, 9u);
  EXPECT_EQ(parsed.checkpoints[0].entry_queue[0].ticket, 11u);
  EXPECT_EQ(parsed.checkpoints[0].holders[0].ticket, 8u);
}

TEST(CodecTest, LockOrderRelationRoundTrips) {
  TraceFile original;
  original.monitor_name = "pool";
  original.monitor_type = "pool";
  original.rmax = -1;
  original.lock_order = {{"lane-0", "lane-1", 3, 7, 9, true},
                         {"lane-1", "lane-0", 4, 2, 5, false}};
  const TraceFile parsed = read_trace_string(write_trace_string(original));
  EXPECT_EQ(parsed.lock_order, original.lock_order);
}

TEST(CodecTest, V2DocumentsParseWithEmptyLockOrder) {
  // A v2 document has no lord lines; the relation defaults to empty, and a
  // v2-shaped body under a v3 magic parses identically (the codec is
  // tag-driven, versions only gate the magic).
  const std::string v2 =
      "robmon-trace v2\n"
      "monitor buf coordinator 8\n"
      "state 1000 4 5 0 700 9\n"
      "endstate\n";
  const TraceFile parsed = read_trace_string(v2);
  EXPECT_TRUE(parsed.lock_order.empty());
  ASSERT_EQ(parsed.checkpoints.size(), 1u);
  EXPECT_EQ(parsed.checkpoints[0].running_ticket, 9u);
}

TEST(CodecTest, RecoveryActionsRoundTrip) {
  TraceFile original;
  original.monitor_name = "pool";
  original.monitor_type = "pool";
  original.rmax = -1;
  original.recovery = {
      {'P', 3, "fork-1", 17, 2600, "victim p3 blocked on fork-1[available]"},
      {'F', 4, "fork-2", 9, 2700, ""},
      {'O', 1, "lane-0", 0, 2800, "imposed order lane-1 lane-2 lane-0"},
      {'C', kNoPid, "", 0, 3100, "recovery complete"},
  };
  const TraceFile parsed = read_trace_string(write_trace_string(original));
  EXPECT_EQ(parsed.recovery, original.recovery);
}

TEST(CodecTest, V3DocumentsParseWithEmptyRecovery) {
  const std::string v3 =
      "robmon-trace v3\n"
      "monitor buf coordinator 8\n"
      "lord a b 1 2 3 W\n";
  const TraceFile parsed = read_trace_string(v3);
  EXPECT_TRUE(parsed.recovery.empty());
  EXPECT_EQ(parsed.lock_order.size(), 1u);
}

TEST(CodecTest, LossCountRoundTrips) {
  TraceFile original;
  original.monitor_name = "m";
  original.monitor_type = "manager";
  original.rmax = -1;
  original.events_lost = 42;
  const std::string text = write_trace_string(original);
  EXPECT_NE(text.find("loss 42\n"), std::string::npos);
  EXPECT_EQ(read_trace_string(text).events_lost, 42u);
}

TEST(CodecTest, ZeroLossOmitsTheLineAndOlderDocumentsDefaultToZero) {
  // A loss-free trace writes no loss line, so v5 documents from healthy
  // runs differ from v4 only in the magic; v1–v4 documents (no loss tag)
  // parse with events_lost == 0.
  TraceFile original;
  original.monitor_name = "m";
  original.monitor_type = "manager";
  original.rmax = -1;
  EXPECT_EQ(write_trace_string(original).find("loss"), std::string::npos);
  const std::string v4 =
      "robmon-trace v4\n"
      "monitor m manager -1\n";
  EXPECT_EQ(read_trace_string(v4).events_lost, 0u);
}

TEST(CodecTest, RejectsBadLossLine) {
  EXPECT_THROW(read_trace_string("robmon-trace v5\nloss nope\n"),
               std::runtime_error);
}

TEST(CodecTest, RejectsBadRecoveryLine) {
  EXPECT_THROW(read_trace_string("robmon-trace v4\nrcov X 1 m 0 0 why\n"),
               std::runtime_error);
  EXPECT_THROW(read_trace_string("robmon-trace v4\nrcov P 1\n"),
               std::runtime_error);
}

TEST(CodecTest, BudgetTransitionsRoundTrip) {
  TraceFile original;
  original.monitor_name = "pool";
  original.monitor_type = "pool";
  original.rmax = -1;
  original.budget = {
      {0, 1, 5200, 3500, 1200,
       "stretch: idle-cadence ceiling boosted, inline monitors offloaded"},
      {1, 2, 6100, 3500, 1300, "shed: lock-order prediction suspended"},
      {2, 3, 4800, 3500, 1400,
       "widen: detection periods widened toward the timer bound"},
      {3, 2, 2100, 3500, 1900,
       "recover: detection periods restored to base cadence"},
  };
  const TraceFile parsed = read_trace_string(write_trace_string(original));
  EXPECT_EQ(parsed.budget, original.budget);
}

TEST(CodecTest, V5DocumentsParseWithEmptyBudget) {
  // A pre-v6 document has no bdgt lines; the transition log defaults to
  // empty — and a budget-free v6 trace differs from v5 only in the magic.
  const std::string v5 =
      "robmon-trace v5\n"
      "monitor m manager -1\n"
      "loss 3\n";
  const TraceFile parsed = read_trace_string(v5);
  EXPECT_TRUE(parsed.budget.empty());
  EXPECT_EQ(parsed.events_lost, 3u);
}

TEST(CodecTest, RejectsBadBudgetLine) {
  // Too few fields.
  EXPECT_THROW(read_trace_string("robmon-trace v6\nbdgt 0 1 5200\n"),
               std::runtime_error);
  // Levels outside the documented four-step ladder are malformed, not a
  // future extension point.
  EXPECT_THROW(read_trace_string("robmon-trace v6\nbdgt 3 4 1 2 100 x\n"),
               std::runtime_error);
  EXPECT_THROW(read_trace_string("robmon-trace v6\nbdgt -1 0 1 2 100 x\n"),
               std::runtime_error);
}

TEST(CodecTest, DocumentedExampleParses) {
  // The worked round-trip example of docs/trace-format.md, verbatim: if
  // this document shape ever stops parsing, the docs are lying.
  const std::string documented =
      "robmon-trace v6\n"
      "monitor fork-1 allocator 1\n"
      "sym 0 Acquire\n"
      "sym 1 Release\n"
      "sym 2 available\n"
      "ev 1 1000 E 1 0 -1 1\n"
      "ev 2 1400 W 1 0 2 0\n"
      "ev 3 2000 E 2 0 -1 0\n"
      "state 2500 0 2 0 2100 4\n"
      "eq 3 0 2200 5\n"
      "cq 2 1 0 1400 2\n"
      "hold 7 1 900 1\n"
      "endstate\n"
      "lord fork-0 fork-1 1 3 5 W\n"
      "lord fork-1 fork-0 2 4 6 H\n"
      "rcov P 1 fork-1 2 2600 victim p1 blocked on fork-1[available]\n"
      "rcov C -1 fork-1 0 3100 recovery complete: cycle dissolved\n"
      "bdgt 0 1 5200 3500 1200 stretch: idle-cadence ceiling boosted, "
      "inline monitors offloaded\n"
      "bdgt 1 0 1800 3500 2900 recover: nominal, full detection and "
      "prediction restored\n";
  const TraceFile parsed = read_trace_string(documented);
  EXPECT_EQ(parsed.monitor_name, "fork-1");
  EXPECT_EQ(parsed.monitor_type, "allocator");
  EXPECT_EQ(parsed.rmax, 1);
  EXPECT_EQ(parsed.symbols,
            (std::vector<std::string>{"Acquire", "Release", "available"}));
  ASSERT_EQ(parsed.events.size(), 3u);
  EXPECT_EQ(parsed.events[1].kind, EventKind::kWait);
  EXPECT_EQ(parsed.events[1].cond, 2);
  ASSERT_EQ(parsed.checkpoints.size(), 1u);
  const SchedulingState& state = parsed.checkpoints[0];
  EXPECT_EQ(state.captured_at, 2500);
  EXPECT_EQ(state.running, 2);
  EXPECT_EQ(state.running_ticket, 4u);
  ASSERT_EQ(state.entry_queue.size(), 1u);
  EXPECT_EQ(state.entry_queue[0].pid, 3);
  ASSERT_EQ(state.cond_queues.size(), 1u);
  EXPECT_EQ(state.cond_queues[0].cond, 2);
  ASSERT_EQ(state.holders.size(), 1u);
  EXPECT_EQ(state.holders[0].pid, 7);
  ASSERT_EQ(parsed.lock_order.size(), 2u);
  EXPECT_TRUE(parsed.lock_order[0].to_wait);
  EXPECT_FALSE(parsed.lock_order[1].to_wait);
  ASSERT_EQ(parsed.recovery.size(), 2u);
  EXPECT_EQ(parsed.recovery[0].action, 'P');
  EXPECT_EQ(parsed.recovery[0].victim, 1);
  EXPECT_EQ(parsed.recovery[0].monitor, "fork-1");
  EXPECT_EQ(parsed.recovery[0].ticket, 2u);
  EXPECT_EQ(parsed.recovery[0].detail,
            "victim p1 blocked on fork-1[available]");
  EXPECT_EQ(parsed.recovery[1].action, 'C');
  EXPECT_EQ(parsed.recovery[1].victim, kNoPid);
  ASSERT_EQ(parsed.budget.size(), 2u);
  EXPECT_EQ(parsed.budget[0].from, 0);
  EXPECT_EQ(parsed.budget[0].to, 1);
  EXPECT_EQ(parsed.budget[0].spend_ppm, 5200u);
  EXPECT_EQ(parsed.budget[0].budget_ppm, 3500u);
  EXPECT_EQ(parsed.budget[0].at, 1200);
  EXPECT_EQ(parsed.budget[0].detail,
            "stretch: idle-cadence ceiling boosted, inline monitors "
            "offloaded");
  EXPECT_EQ(parsed.budget[1].to, 0);
  // And the example round-trips: re-serializing reproduces the document.
  EXPECT_EQ(write_trace_string(parsed), documented);
}

TEST(CodecTest, RejectsBadLockOrderLine) {
  EXPECT_THROW(read_trace_string("robmon-trace v3\nlord a b 1 2 3 X\n"),
               std::runtime_error);
  EXPECT_THROW(read_trace_string("robmon-trace v3\nlord a b\n"),
               std::runtime_error);
}

TEST(CodecTest, RejectsUnknownTag) {
  EXPECT_THROW(read_trace_string("robmon-trace v1\nbogus 1 2 3\n"),
               std::runtime_error);
}

TEST(CodecTest, RejectsBadEventKind) {
  EXPECT_THROW(
      read_trace_string("robmon-trace v1\nev 0 1 X 1 0 -1 0\n"),
      std::runtime_error);
}

TEST(CodecTest, RejectsOrphanQueueLines) {
  EXPECT_THROW(read_trace_string("robmon-trace v1\neq 1 0 0\n"),
               std::runtime_error);
  EXPECT_THROW(read_trace_string("robmon-trace v1\nendstate\n"),
               std::runtime_error);
}

TEST(CodecTest, MakeTraceFileCopiesSymbols) {
  SymbolTable symbols;
  symbols.intern("Send");
  symbols.intern("full");
  const TraceFile file = make_trace_file("m", "coordinator", 4, symbols,
                                         {}, {});
  ASSERT_EQ(file.symbols.size(), 2u);
  EXPECT_EQ(file.symbols[0], "Send");
  EXPECT_EQ(file.symbols[1], "full");
}

}  // namespace
}  // namespace robmon::trace
